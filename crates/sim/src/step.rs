//! Expansion of one fine-tuning step into its kernel trace.
//!
//! The builder walks the model layer by layer and emits every kernel a
//! PyTorch-eager fine-tuning step launches: normalization, mixer
//! (attention or Mamba), router, top-k selection, per-expert GEMMs with
//! optional NF4 de-quantization and LoRA adapters, the LM head, the
//! backward mirror of all of it (including gradient-checkpointing
//! re-computation), and the optimizer sweep.

use crate::trace::{KernelRecord, Section, Stage, StepTrace, TraceSegment};
use ftsim_gpu::{CostModel, KernelDesc, KernelKind};
use ftsim_model::{FineTuneConfig, FineTuneMethod, ModelConfig, SequenceMixer};
use ftsim_tensor::nn::ExpertKind;
use ftsim_tensor::pool::{Pool, PoolStats};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

thread_local! {
    /// Recycled kernel-record storage for the sweep hot path. One pool per
    /// thread (like the tensor runtime's buffer pool): recycling stays
    /// uncontended and the allocation counters are deterministic for the
    /// thread doing the sweeping. [`StepTrace`] returns sole-owned segment
    /// buffers here on drop, so steady-state `simulate_step` calls —
    /// identical shapes, step after step — allocate no record storage.
    static RECORD_POOL: Pool<KernelRecord> = Pool::with_label("sim.record_pool");
}

/// Runs `f` against the calling thread's kernel-record pool.
pub(crate) fn with_record_pool<R>(f: impl FnOnce(&Pool<KernelRecord>) -> R) -> R {
    RECORD_POOL.with(f)
}

/// Allocation counters of the calling thread's kernel-record pool (how the
/// zero-steady-state-allocation property of the sweep hot path is asserted).
pub fn record_pool_stats() -> PoolStats {
    RECORD_POOL.with(|p| p.stats())
}

/// Obs counters for [`TraceCache`] effectiveness; registered on first use.
fn cache_obs() -> &'static (ftsim_obs::Counter, ftsim_obs::Counter) {
    static COUNTERS: OnceLock<(ftsim_obs::Counter, ftsim_obs::Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let registry = ftsim_obs::registry();
        (
            registry.counter("sim.trace_cache.hits"),
            registry.counter("sim.trace_cache.misses"),
        )
    })
}

/// Which half of a transformer layer a cached trace covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LayerKind {
    /// The layer's forward emission (also used for gradient-checkpointing
    /// re-computation, keyed under `Stage::Backward`).
    Forward,
    /// The layer's backward emission.
    Backward,
}

/// Cache key: a layer trace is fully determined by the stage it is emitted
/// in, which half of the layer it covers, and the (batch, seq_len) shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TraceKey {
    stage: Stage,
    kind: LayerKind,
    batch: usize,
    seq_len: usize,
}

/// Memoizes priced per-layer kernel traces.
///
/// All `num_layers` transformer layers of a step launch an identical kernel
/// sequence, so each distinct (stage, layer-kind, batch, seq_len) trace is
/// computed and priced once and shared via [`Arc`]; [`StepTrace`] replays it
/// with a repeat count. This turns `simulate_step` from O(layers × kernels)
/// into O(kernels).
#[derive(Debug, Default)]
pub struct TraceCache {
    entries: HashMap<TraceKey, Arc<Vec<KernelRecord>>>,
    hits: u64,
    misses: u64,
}

/// Counters describing how effective a simulator's [`TraceCache`] has been.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and price) a layer trace.
    pub misses: u64,
    /// Distinct layer traces currently stored.
    pub entries: usize,
}

/// Simulates training steps for one (model, recipe, GPU) combination.
#[derive(Debug)]
pub struct StepSimulator {
    model: ModelConfig,
    ft: FineTuneConfig,
    cost: CostModel,
    cache: Mutex<TraceCache>,
}

impl Clone for StepSimulator {
    /// Clones the configuration with a fresh (empty) trace cache.
    fn clone(&self) -> Self {
        StepSimulator::new(self.model.clone(), self.ft, self.cost.clone())
    }
}

/// Internal builder accumulating the kernels of one step or layer.
struct TraceBuilder<'a> {
    cost: &'a CostModel,
    records: Vec<KernelRecord>,
    stage: Stage,
}

impl<'a> TraceBuilder<'a> {
    /// Pre-sizes the record vector from the thread's record pool; hot sweep
    /// paths pass the exact kernel count (see the `*_kernels` estimators) so
    /// emission never reallocates, and after warm-up the storage itself is
    /// recycled rather than freshly allocated.
    fn with_capacity(cost: &'a CostModel, kernels: usize) -> Self {
        TraceBuilder {
            cost,
            records: with_record_pool(|p| p.take(kernels)),
            stage: Stage::Forward,
        }
    }

    fn emit(&mut self, section: Section, desc: KernelDesc) {
        let cost = self.cost.kernel_cost(&desc);
        self.records.push(KernelRecord {
            stage: self.stage,
            section,
            desc,
            cost,
        });
    }
}

impl StepSimulator {
    /// Creates a simulator.
    pub fn new(model: ModelConfig, ft: FineTuneConfig, cost: CostModel) -> Self {
        StepSimulator {
            model,
            ft,
            cost,
            cache: Mutex::new(TraceCache::default()),
        }
    }

    /// The model being simulated.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The fine-tuning recipe.
    pub fn finetune(&self) -> &FineTuneConfig {
        &self.ft
    }

    /// The GPU cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Simulates one full training step (forward + backward + optimizer)
    /// over `batch` queries padded to `seq_len` tokens.
    ///
    /// The per-layer traces are memoized in the simulator's [`TraceCache`]
    /// and replayed with repeat counts, so only one layer-trace computation
    /// happens per distinct (stage, layer-kind) — O(kernels), not
    /// O(layers × kernels). The result is bit-identical to
    /// [`StepSimulator::simulate_step_naive`].
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `seq_len` is zero.
    pub fn simulate_step(&self, batch: usize, seq_len: usize) -> StepTrace {
        assert!(batch >= 1, "batch must be at least 1");
        assert!(seq_len >= 1, "seq_len must be at least 1");
        let _step = ftsim_obs::span("sim.step", "simulate_step");
        let layers = self.model.num_layers;

        // ---- Forward ----
        let (prologue, fwd_layer, head) = {
            let _stage = ftsim_obs::span("sim.step", "forward");
            let mut prologue = TraceBuilder::with_capacity(&self.cost, self.embedding_kernels());
            self.emit_embedding(&mut prologue, batch, seq_len);
            let fwd_layer = self.layer_records(Stage::Forward, LayerKind::Forward, batch, seq_len);
            let mut head = TraceBuilder::with_capacity(&self.cost, self.head_kernels());
            self.emit_head(&mut head, batch, seq_len);
            (prologue, fwd_layer, head)
        };

        // ---- Backward ----
        // LM head backward first (loss gradient), then the layers.
        let (head_bwd, bwd_block) = {
            let _stage = ftsim_obs::span("sim.step", "backward");
            let mut head_bwd =
                TraceBuilder::with_capacity(&self.cost, self.head_backward_kernels());
            head_bwd.stage = Stage::Backward;
            self.emit_head_backward(&mut head_bwd, batch, seq_len);
            let bwd_layer =
                self.layer_records(Stage::Backward, LayerKind::Backward, batch, seq_len);
            let bwd_block = if self.ft.gradient_checkpointing {
                // Recompute the layer's forward before differentiating it: the
                // repeated block is [recompute ++ backward]. Concatenating two
                // cached traces copies records but prices nothing.
                let recompute =
                    self.layer_records(Stage::Backward, LayerKind::Forward, batch, seq_len);
                let mut combined = with_record_pool(|p| p.take(recompute.len() + bwd_layer.len()));
                combined.extend_from_slice(&recompute);
                combined.extend_from_slice(&bwd_layer);
                Arc::new(combined)
            } else {
                bwd_layer
            };
            (head_bwd, bwd_block)
        };

        // ---- Optimizer ----
        let opt = {
            let _stage = ftsim_obs::span("sim.step", "optimizer");
            let mut opt = TraceBuilder::with_capacity(&self.cost, self.optimizer_kernels());
            opt.stage = Stage::Optimizer;
            self.emit_optimizer(&mut opt);
            opt
        };

        let trace = StepTrace::from_segments(
            vec![
                TraceSegment::once(prologue.records),
                TraceSegment::repeated(fwd_layer, layers),
                TraceSegment::once(head.records),
                TraceSegment::once(head_bwd.records),
                TraceSegment::repeated(bwd_block, layers),
                TraceSegment::once(opt.records),
            ],
            batch,
            seq_len,
            self.model.is_attention(),
        );
        // Stage-share gauges so a live follower sees the Fig. 4 breakdown
        // evolve mid-sweep, not only in the post-run summary.
        if ftsim_obs::enabled() {
            let total = trace.total_seconds();
            if total > 0.0 {
                let registry = ftsim_obs::registry();
                registry.gauge_set("sim.step.total_s", total);
                registry.gauge_set(
                    "sim.step.forward_pct",
                    100.0 * trace.stage_seconds(Stage::Forward) / total,
                );
                registry.gauge_set(
                    "sim.step.backward_pct",
                    100.0 * trace.stage_seconds(Stage::Backward) / total,
                );
                registry.gauge_set(
                    "sim.step.optimizer_pct",
                    100.0 * trace.stage_seconds(Stage::Optimizer) / total,
                );
            }
        }
        trace
    }

    /// Reference path: emits every layer's kernels individually, with no
    /// memoization or segment compression — O(layers × kernels). Kept for
    /// equivalence testing and as the baseline the perf benches compare
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `seq_len` is zero.
    pub fn simulate_step_naive(&self, batch: usize, seq_len: usize) -> StepTrace {
        assert!(batch >= 1, "batch must be at least 1");
        assert!(seq_len >= 1, "seq_len must be at least 1");
        let mut b = TraceBuilder::with_capacity(&self.cost, self.step_kernels());

        // ---- Forward ----
        b.stage = Stage::Forward;
        self.emit_embedding(&mut b, batch, seq_len);
        for _ in 0..self.model.num_layers {
            self.emit_layer_forward(&mut b, batch, seq_len);
        }
        self.emit_head(&mut b, batch, seq_len);

        // ---- Backward ----
        b.stage = Stage::Backward;
        self.emit_head_backward(&mut b, batch, seq_len);
        for _ in 0..self.model.num_layers {
            if self.ft.gradient_checkpointing {
                self.emit_layer_forward(&mut b, batch, seq_len);
            }
            self.emit_layer_backward(&mut b, batch, seq_len);
        }

        // ---- Optimizer ----
        b.stage = Stage::Optimizer;
        self.emit_optimizer(&mut b);

        StepTrace::from_records(b.records, batch, seq_len, self.model.is_attention())
    }

    /// Snapshot of the trace cache's hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().expect("trace cache poisoned");
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            entries: cache.entries.len(),
        }
    }

    /// Looks up (or computes once) the priced trace of one layer half.
    fn layer_records(
        &self,
        stage: Stage,
        kind: LayerKind,
        batch: usize,
        seq_len: usize,
    ) -> Arc<Vec<KernelRecord>> {
        let key = TraceKey {
            stage,
            kind,
            batch,
            seq_len,
        };
        {
            let mut cache = self.cache.lock().expect("trace cache poisoned");
            if let Some(records) = cache.entries.get(&key).cloned() {
                cache.hits += 1;
                if ftsim_obs::enabled() {
                    cache_obs().0.add(1);
                }
                return records;
            }
        }
        // Price outside the lock so concurrent sweeps over different shapes
        // never serialize on each other; a racing duplicate computation is
        // deterministic and the first insert wins.
        let _span = ftsim_obs::span_lazy("sim.step", || {
            format!("layer_trace:{}:{kind:?}", stage.label())
        });
        let built = Arc::new(self.build_layer_records(stage, kind, batch, seq_len));
        let mut cache = self.cache.lock().expect("trace cache poisoned");
        cache.misses += 1;
        if ftsim_obs::enabled() {
            cache_obs().1.add(1);
        }
        cache.entries.entry(key).or_insert(built).clone()
    }

    fn build_layer_records(
        &self,
        stage: Stage,
        kind: LayerKind,
        batch: usize,
        seq_len: usize,
    ) -> Vec<KernelRecord> {
        let capacity = match kind {
            LayerKind::Forward => self.layer_forward_kernels(),
            LayerKind::Backward => self.layer_backward_kernels(),
        };
        let mut b = TraceBuilder::with_capacity(&self.cost, capacity);
        b.stage = stage;
        match kind {
            LayerKind::Forward => self.emit_layer_forward(&mut b, batch, seq_len),
            LayerKind::Backward => self.emit_layer_backward(&mut b, batch, seq_len),
        }
        b.records
    }

    /// Tokens routed to each expert under the configured sparsity, assuming
    /// balanced routing (the paper's load-imbalance analysis is separate,
    /// in [`crate::routing`]).
    fn tokens_per_expert(&self, tokens: usize) -> usize {
        let k = self.ft.sparsity.active_experts(self.model.moe.num_experts);
        (tokens * k).div_ceil(self.model.moe.num_experts).max(1)
    }

    /// `true` when base weights are NF4 and must be de-quantized per use.
    fn quantized(&self) -> bool {
        self.ft.method.is_quantized()
    }

    // ---- Kernel-count estimators ----
    //
    // Each mirrors the matching `emit_*` method exactly (a unit test pins
    // them together) so `TraceBuilder::with_capacity` can pre-size record
    // vectors and emission never reallocates in hot sweep loops.

    fn expert_mats(&self) -> usize {
        match self.model.moe.expert_kind {
            ExpertKind::SwiGlu => 3,
            ExpertKind::GeluFfn => 2,
        }
    }

    fn embedding_kernels(&self) -> usize {
        1
    }

    fn mixer_forward_kernels(&self) -> usize {
        match self.model.mixer {
            SequenceMixer::Attention { .. } => usize::from(self.quantized()) + 4,
            SequenceMixer::Mamba { .. } => 8,
        }
    }

    fn moe_forward_kernels(&self) -> usize {
        let mats = self.expert_mats();
        let lora = if self.ft.method.lora_rank().is_some() {
            2 * mats
        } else {
            0
        };
        let per_expert = usize::from(self.quantized()) + (mats - 1) + 3 + lora;
        3 + self.model.moe.num_experts * per_expert
    }

    fn layer_forward_kernels(&self) -> usize {
        2 + self.mixer_forward_kernels() + self.moe_forward_kernels()
    }

    fn mixer_backward_kernels(&self) -> usize {
        let full = usize::from(matches!(self.ft.method, FineTuneMethod::Full));
        3 + 2 * full
    }

    fn layer_backward_kernels(&self) -> usize {
        let mats = self.expert_mats();
        let full = matches!(self.ft.method, FineTuneMethod::Full);
        // dX matmuls through W2, W1 (and W3) + the activation backward.
        let mut per_expert = mats + 1;
        if full {
            per_expert += mats;
        }
        if self.ft.method.lora_rank().is_some() {
            per_expert += 4 * mats;
        }
        self.model.moe.num_experts * per_expert + 1 + self.mixer_backward_kernels() + 1
    }

    fn head_kernels(&self) -> usize {
        3
    }

    fn head_backward_kernels(&self) -> usize {
        2 + usize::from(matches!(self.ft.method, FineTuneMethod::Full))
    }

    fn optimizer_kernels(&self) -> usize {
        1
    }

    /// Exact kernel launches in one (uncompressed) step trace.
    fn step_kernels(&self) -> usize {
        let layers = self.model.num_layers;
        let recompute = if self.ft.gradient_checkpointing {
            self.layer_forward_kernels()
        } else {
            0
        };
        self.embedding_kernels()
            + layers * self.layer_forward_kernels()
            + self.head_kernels()
            + self.head_backward_kernels()
            + layers * (recompute + self.layer_backward_kernels())
            + self.optimizer_kernels()
    }

    fn emit_embedding(&self, b: &mut TraceBuilder, batch: usize, seq_len: usize) {
        let tokens = (batch * seq_len) as f64;
        let h = self.model.hidden as f64;
        b.emit(
            Section::Embedding,
            KernelDesc::elementwise(KernelKind::Elementwise, tokens * h, 1.0, 4.0),
        );
    }

    fn emit_norm(&self, b: &mut TraceBuilder, batch: usize, seq_len: usize) {
        let tokens = (batch * seq_len) as f64;
        let h = self.model.hidden as f64;
        b.emit(
            Section::Norm,
            KernelDesc::elementwise(KernelKind::Norm, tokens * h, 8.0, 4.0),
        );
    }

    fn emit_layer_forward(&self, b: &mut TraceBuilder, batch: usize, seq_len: usize) {
        self.emit_norm(b, batch, seq_len); // input norm
        self.emit_mixer_forward(b, batch, seq_len);
        self.emit_norm(b, batch, seq_len); // post-mixer norm
        self.emit_moe_forward(b, batch, seq_len);
    }

    fn emit_mixer_forward(&self, b: &mut TraceBuilder, batch: usize, seq_len: usize) {
        let tokens = batch * seq_len;
        let h = self.model.hidden;
        match self.model.mixer {
            SequenceMixer::Attention {
                heads,
                kv_heads,
                head_dim,
            } => {
                let q_dim = heads * head_dim;
                let kv_dim = kv_heads * head_dim;
                if self.quantized() {
                    let attn_weights = (h * q_dim + 2 * h * kv_dim + q_dim * h) as f64;
                    b.emit(Section::Mixer, KernelDesc::dequant(attn_weights));
                }
                // Fused QKV projection.
                b.emit(
                    Section::Mixer,
                    KernelDesc::matmul(tokens, q_dim + 2 * kv_dim, h, 2),
                );
                // FlashAttention-2: 2 GEMM-like passes over the score matrix.
                let flops = 4.0 * tokens as f64 * seq_len as f64 * q_dim as f64;
                let bytes = 4.0 * tokens as f64 * q_dim as f64 * 2.0;
                let tiles = (batch * heads) as f64 * (seq_len as f64 / 64.0).ceil();
                b.emit(
                    Section::Mixer,
                    KernelDesc::new(KernelKind::Attention, flops, bytes, tiles),
                );
                // Output projection + residual.
                b.emit(Section::Mixer, KernelDesc::matmul(tokens, h, q_dim, 2));
                b.emit(
                    Section::Mixer,
                    KernelDesc::elementwise(KernelKind::Elementwise, (tokens * h) as f64, 1.0, 6.0),
                );
            }
            SequenceMixer::Mamba {
                expand,
                state_dim,
                conv_width,
                dt_rank,
            } => {
                let d_inner = expand * h;
                // Input projection for the x and gate paths.
                b.emit(
                    Section::Mixer,
                    KernelDesc::matmul(tokens, 2 * d_inner, h, 2),
                );
                // Depthwise conv (elementwise-ish) + selective scan.
                b.emit(
                    Section::Mixer,
                    KernelDesc::elementwise(
                        KernelKind::Elementwise,
                        (tokens * d_inner) as f64,
                        2.0 * conv_width as f64,
                        6.0,
                    ),
                );
                b.emit(
                    Section::Mixer,
                    KernelDesc::matmul(tokens, dt_rank + 2 * state_dim, d_inner, 2),
                );
                b.emit(
                    Section::Mixer,
                    KernelDesc::matmul(tokens, d_inner, dt_rank, 2),
                );
                // Selective scan: ~9 FLOPs per (token, channel, state) with
                // parallelism over batch × channels only (sequential in L).
                let scan_flops = 9.0 * (tokens * d_inner * state_dim) as f64;
                let scan_bytes = (tokens * d_inner) as f64 * 12.0;
                let scan_tiles = batch as f64 * (d_inner as f64 / 128.0).ceil();
                b.emit(
                    Section::Mixer,
                    KernelDesc::new(KernelKind::MambaScan, scan_flops, scan_bytes, scan_tiles),
                );
                // Gate multiply + output projection + residual.
                b.emit(
                    Section::Mixer,
                    KernelDesc::elementwise(
                        KernelKind::Elementwise,
                        (tokens * d_inner) as f64,
                        4.0,
                        6.0,
                    ),
                );
                b.emit(Section::Mixer, KernelDesc::matmul(tokens, h, d_inner, 2));
                b.emit(
                    Section::Mixer,
                    KernelDesc::elementwise(KernelKind::Elementwise, (tokens * h) as f64, 1.0, 6.0),
                );
            }
        }
    }

    fn emit_moe_forward(&self, b: &mut TraceBuilder, batch: usize, seq_len: usize) {
        let tokens = batch * seq_len;
        let h = self.model.hidden;
        let f = self.model.moe.ffn_dim;
        let e = self.model.moe.num_experts;
        let te = self.tokens_per_expert(tokens);

        // Router: gate projection, softmax, top-k (paper Fig. 12 lines 1-3).
        b.emit(Section::Moe, {
            let mut d = KernelDesc::matmul(tokens, e, h, 2);
            d.kind = KernelKind::Router;
            d
        });
        b.emit(
            Section::Moe,
            KernelDesc::elementwise(KernelKind::Softmax, (tokens * e) as f64, 6.0, 8.0),
        );
        b.emit(
            Section::Moe,
            KernelDesc::elementwise(KernelKind::TopK, (tokens * e) as f64, 4.0, 8.0),
        );

        let expert_mats = match self.model.moe.expert_kind {
            ExpertKind::SwiGlu => 3usize,
            ExpertKind::GeluFfn => 2,
        };
        let lora_rank = self.ft.method.lora_rank();

        // Expert loop (paper Fig. 12 lines 4-8). Every expert receives
        // tokens in expectation at these batch sizes, so all `e` experts
        // launch their kernels; sparsity shows up as fewer tokens each.
        for _ in 0..e {
            if self.quantized() {
                b.emit(
                    Section::Moe,
                    KernelDesc::dequant((expert_mats * h * f) as f64),
                );
            }
            // W1 (and W3 for SwiGLU): h → f.
            b.emit(Section::Moe, KernelDesc::matmul(te, f, h, 2));
            if expert_mats == 3 {
                b.emit(Section::Moe, KernelDesc::matmul(te, f, h, 2));
            }
            // Activation (+ gating multiply for SwiGLU).
            b.emit(
                Section::Moe,
                KernelDesc::elementwise(KernelKind::Elementwise, (te * f) as f64, 10.0, 6.0),
            );
            // W2: f → h.
            b.emit(Section::Moe, KernelDesc::matmul(te, h, f, 2));
            if let Some(r) = lora_rank {
                // Two small GEMMs per adapted matrix: x@A then (xA)@B.
                for _ in 0..expert_mats {
                    b.emit(Section::Moe, KernelDesc::matmul(te, r, h, 2));
                    b.emit(Section::Moe, KernelDesc::matmul(te, f, r, 2));
                }
            }
            // Weighted scatter back into the hidden states (Fig. 12 line 8).
            b.emit(
                Section::Moe,
                KernelDesc::elementwise(KernelKind::IndexAdd, (te * h) as f64, 2.0, 10.0),
            );
        }
    }

    fn emit_head(&self, b: &mut TraceBuilder, batch: usize, seq_len: usize) {
        let tokens = batch * seq_len;
        let h = self.model.hidden;
        let v = self.model.vocab;
        self.emit_norm(b, batch, seq_len);
        b.emit(Section::Head, KernelDesc::matmul(tokens, v, h, 2));
        // Cross-entropy over the vocabulary.
        b.emit(
            Section::Head,
            KernelDesc::elementwise(KernelKind::Softmax, (tokens * v) as f64, 6.0, 6.0),
        );
    }

    fn emit_head_backward(&self, b: &mut TraceBuilder, batch: usize, seq_len: usize) {
        let tokens = batch * seq_len;
        let h = self.model.hidden;
        let v = self.model.vocab;
        // dLogits (elementwise) + dX through the LM head.
        b.emit(
            Section::Head,
            KernelDesc::elementwise(KernelKind::Elementwise, (tokens * v) as f64, 4.0, 6.0),
        );
        b.emit(Section::Head, KernelDesc::matmul(tokens, h, v, 2));
        if matches!(self.ft.method, FineTuneMethod::Full) {
            // Weight gradient for the head.
            b.emit(Section::Head, KernelDesc::matmul(v, h, tokens, 2));
        }
    }

    fn emit_layer_backward(&self, b: &mut TraceBuilder, batch: usize, seq_len: usize) {
        let tokens = batch * seq_len;
        let h = self.model.hidden;
        let f = self.model.moe.ffn_dim;
        let e = self.model.moe.num_experts;
        let te = self.tokens_per_expert(tokens);
        let full = matches!(self.ft.method, FineTuneMethod::Full);
        let lora_rank = self.ft.method.lora_rank();
        let expert_mats = match self.model.moe.expert_kind {
            ExpertKind::SwiGlu => 3usize,
            ExpertKind::GeluFfn => 2,
        };

        // --- MoE backward ---
        for _ in 0..e {
            // dX through W2 then W1 (and W3): same GEMM volume as forward.
            b.emit(Section::Moe, KernelDesc::matmul(te, f, h, 2));
            b.emit(Section::Moe, KernelDesc::matmul(te, h, f, 2));
            if expert_mats == 3 {
                b.emit(Section::Moe, KernelDesc::matmul(te, h, f, 2));
            }
            b.emit(
                Section::Moe,
                KernelDesc::elementwise(KernelKind::Elementwise, (te * f) as f64, 12.0, 8.0),
            );
            if full {
                // Weight gradients for every expert matrix.
                b.emit(Section::Moe, KernelDesc::matmul(h, f, te, 2));
                b.emit(Section::Moe, KernelDesc::matmul(f, h, te, 2));
                if expert_mats == 3 {
                    b.emit(Section::Moe, KernelDesc::matmul(h, f, te, 2));
                }
            }
            if let Some(r) = lora_rank {
                // dX and dW for both adapter factors.
                for _ in 0..expert_mats {
                    b.emit(Section::Moe, KernelDesc::matmul(te, h, r, 2));
                    b.emit(Section::Moe, KernelDesc::matmul(te, r, f, 2));
                    b.emit(Section::Moe, KernelDesc::matmul(r, h, te, 2));
                    b.emit(Section::Moe, KernelDesc::matmul(r, f, te, 2));
                }
            }
        }
        // Router backward (always trained: full FT trains it, and the
        // paper's QLoRA setup adapts the routers too).
        b.emit(Section::Moe, {
            let mut d = KernelDesc::matmul(tokens, h, e, 2);
            d.kind = KernelKind::Router;
            d
        });

        // --- Mixer backward ---
        match self.model.mixer {
            SequenceMixer::Attention {
                heads,
                kv_heads,
                head_dim,
            } => {
                let q_dim = heads * head_dim;
                let kv_dim = kv_heads * head_dim;
                // dX through output and QKV projections.
                b.emit(Section::Mixer, KernelDesc::matmul(tokens, q_dim, h, 2));
                b.emit(
                    Section::Mixer,
                    KernelDesc::matmul(tokens, h, q_dim + 2 * kv_dim, 2),
                );
                // Attention backward ≈ 2× forward.
                let flops = 8.0 * tokens as f64 * seq_len as f64 * q_dim as f64;
                let bytes = 6.0 * tokens as f64 * q_dim as f64 * 2.0;
                let tiles = (batch * heads) as f64 * (seq_len as f64 / 64.0).ceil();
                b.emit(
                    Section::Mixer,
                    KernelDesc::new(KernelKind::Attention, flops, bytes, tiles),
                );
                if full {
                    b.emit(
                        Section::Mixer,
                        KernelDesc::matmul(q_dim + 2 * kv_dim, h, tokens, 2),
                    );
                    b.emit(Section::Mixer, KernelDesc::matmul(h, q_dim, tokens, 2));
                }
            }
            SequenceMixer::Mamba {
                expand, state_dim, ..
            } => {
                let d_inner = expand * h;
                b.emit(
                    Section::Mixer,
                    KernelDesc::matmul(tokens, h, 2 * d_inner, 2),
                );
                b.emit(Section::Mixer, KernelDesc::matmul(tokens, d_inner, h, 2));
                // Scan backward ≈ 2× forward.
                let scan_flops = 18.0 * (tokens * d_inner * state_dim) as f64;
                let scan_bytes = (tokens * d_inner) as f64 * 20.0;
                let scan_tiles = batch as f64 * (d_inner as f64 / 128.0).ceil();
                b.emit(
                    Section::Mixer,
                    KernelDesc::new(KernelKind::MambaScan, scan_flops, scan_bytes, scan_tiles),
                );
                if full {
                    b.emit(
                        Section::Mixer,
                        KernelDesc::matmul(2 * d_inner, h, tokens, 2),
                    );
                    b.emit(Section::Mixer, KernelDesc::matmul(h, d_inner, tokens, 2));
                }
            }
        }

        // Norm backward (both norms).
        let tokens_h = (tokens * h) as f64;
        b.emit(
            Section::Norm,
            KernelDesc::elementwise(KernelKind::Norm, 2.0 * tokens_h, 12.0, 8.0),
        );
    }

    fn emit_optimizer(&self, b: &mut TraceBuilder) {
        let trainable = self.ft.trainable_params(&self.model) as f64;
        // AdamW read-modify-write traffic per parameter:
        //   full FT: bf16 params r/w (4 B) + bf16 grad read (2 B)
        //            + fp32 m, v r/w (16 B) = 22 B
        //   LoRA/QLoRA: fp32 params r/w (8 B) + fp32 grad (4 B)
        //            + fp32 m, v r/w (16 B) = 28 B
        let bytes_per_param = match self.ft.method {
            FineTuneMethod::Full => 22.0,
            FineTuneMethod::Lora { .. } | FineTuneMethod::QLora { .. } => 28.0,
        };
        b.emit(
            Section::Optimizer,
            KernelDesc::new(
                KernelKind::Optimizer,
                16.0 * trainable,
                bytes_per_param * trainable,
                (trainable / 65_536.0).ceil(),
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Stage;
    use ftsim_gpu::GpuSpec;
    use ftsim_model::presets;
    use proptest::prelude::*;

    fn mixtral_sim(ft: FineTuneConfig) -> StepSimulator {
        StepSimulator::new(presets::mixtral_8x7b(), ft, CostModel::new(GpuSpec::a40()))
    }

    fn blackmamba_sim(ft: FineTuneConfig) -> StepSimulator {
        StepSimulator::new(
            presets::blackmamba_2p8b(),
            ft,
            CostModel::new(GpuSpec::a40()),
        )
    }

    #[test]
    fn trace_has_all_three_stages() {
        let t = mixtral_sim(FineTuneConfig::qlora_sparse()).simulate_step(1, 128);
        for stage in [Stage::Forward, Stage::Backward, Stage::Optimizer] {
            assert!(t.stage_seconds(stage) > 0.0, "{stage} missing");
        }
    }

    #[test]
    fn moe_dominates_mixtral_step() {
        // Paper Fig. 5: the MoE layer is the most time-consuming, ~85% on
        // average across configurations.
        let t = mixtral_sim(FineTuneConfig::qlora_sparse()).simulate_step(1, 128);
        let moe_pct = t.section_breakdown().percent("moe");
        assert!(moe_pct > 70.0, "MoE share only {moe_pct:.1}%");
    }

    #[test]
    fn moe_dominates_blackmamba_step() {
        let t = blackmamba_sim(FineTuneConfig::full_sparse()).simulate_step(1, 128);
        let moe_pct = t.section_breakdown().percent("moe");
        assert!(moe_pct > 50.0, "MoE share only {moe_pct:.1}%");
        assert!(t.section_breakdown().seconds("mamba") > 0.0);
    }

    #[test]
    fn backward_exceeds_forward() {
        // Paper Fig. 4: the backward stage typically takes more time than
        // forward (gradient computation + checkpoint recomputation).
        for t in [
            mixtral_sim(FineTuneConfig::qlora_sparse()).simulate_step(2, 128),
            blackmamba_sim(FineTuneConfig::full_sparse()).simulate_step(2, 128),
        ] {
            assert!(t.stage_seconds(Stage::Backward) > t.stage_seconds(Stage::Forward));
        }
    }

    #[test]
    fn optimizer_share_blackmamba_vs_mixtral() {
        // Paper Fig. 4: optimizer is a large share for BlackMamba full FT
        // (up to ~53% at sparse batch 1) and negligible for Mixtral QLoRA.
        let bm = blackmamba_sim(FineTuneConfig::full_sparse()).simulate_step(1, 128);
        let bm_share = bm.stage_seconds(Stage::Optimizer) / bm.total_seconds();
        assert!(
            (0.30..0.70).contains(&bm_share),
            "BlackMamba optimizer share {bm_share:.2}"
        );
        let mx = mixtral_sim(FineTuneConfig::qlora_sparse()).simulate_step(1, 128);
        let mx_share = mx.stage_seconds(Stage::Optimizer) / mx.total_seconds();
        assert!(mx_share < 0.05, "Mixtral optimizer share {mx_share:.3}");
    }

    #[test]
    fn dense_step_is_slower_than_sparse() {
        let sparse = mixtral_sim(FineTuneConfig::qlora_sparse()).simulate_step(2, 128);
        let dense = mixtral_sim(FineTuneConfig::qlora_dense()).simulate_step(2, 128);
        assert!(dense.total_seconds() > sparse.total_seconds());
    }

    #[test]
    fn bigger_batch_takes_longer_but_sublinearly() {
        let sim = mixtral_sim(FineTuneConfig::qlora_sparse());
        let t1 = sim.simulate_step(1, 128).total_seconds();
        let t8 = sim.simulate_step(8, 128).total_seconds();
        assert!(t8 > t1);
        assert!(
            t8 < 8.0 * t1,
            "step time should grow sublinearly: {t1} -> {t8}"
        );
    }

    #[test]
    fn dequant_only_for_qlora() {
        let mx = mixtral_sim(FineTuneConfig::qlora_sparse()).simulate_step(1, 64);
        assert!(mx.moe_kernel_breakdown().seconds("dequant") > 0.0);
        let bm = blackmamba_sim(FineTuneConfig::full_sparse()).simulate_step(1, 64);
        assert_eq!(bm.moe_kernel_breakdown().seconds("dequant"), 0.0);
    }

    #[test]
    fn matmul_is_largest_moe_kernel() {
        // Paper Fig. 6 / Takeaway 3: matrix multiplication dominates the
        // MoE layer.
        for t in [
            mixtral_sim(FineTuneConfig::qlora_sparse()).simulate_step(8, 128),
            blackmamba_sim(FineTuneConfig::full_dense()).simulate_step(6, 128),
        ] {
            let b = t.moe_kernel_breakdown();
            assert_eq!(b.sorted()[0].0, "matmul", "{:?}", b.sorted());
        }
    }

    #[test]
    fn checkpointing_inflates_backward() {
        let mut ft = FineTuneConfig::qlora_sparse();
        let with = mixtral_sim(ft).simulate_step(2, 128);
        ft.gradient_checkpointing = false;
        let without = mixtral_sim(ft).simulate_step(2, 128);
        assert!(with.stage_seconds(Stage::Backward) > 1.3 * without.stage_seconds(Stage::Backward));
        // Forward is unaffected.
        let fw = with.stage_seconds(Stage::Forward);
        let fwo = without.stage_seconds(Stage::Forward);
        assert!((fw - fwo).abs() < 1e-9);
    }

    #[test]
    fn flop_accounting_matches_active_params() {
        // Forward GEMM flops should be ≈ 2 × active params × tokens.
        let sim = mixtral_sim(FineTuneConfig::qlora_sparse());
        let t = sim.simulate_step(1, 128);
        let fwd_flops: f64 = t
            .records()
            .filter(|r| r.stage == Stage::Forward)
            .map(|r| r.desc.flops)
            .sum();
        let active = presets::mixtral_8x7b().param_counts().active_total(2) as f64;
        let expected = 2.0 * active * 128.0;
        let ratio = fwd_flops / expected;
        assert!(
            (0.8..1.6).contains(&ratio),
            "forward flops {fwd_flops:.3e} vs 2·P_active·T {expected:.3e} (ratio {ratio:.2})"
        );
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_rejected() {
        mixtral_sim(FineTuneConfig::qlora_sparse()).simulate_step(0, 128);
    }

    /// All (model, recipe) combinations the equivalence tests sweep.
    fn preset_sims() -> Vec<StepSimulator> {
        let mut sims = vec![
            mixtral_sim(FineTuneConfig::qlora_sparse()),
            mixtral_sim(FineTuneConfig::qlora_dense()),
            blackmamba_sim(FineTuneConfig::full_sparse()),
            blackmamba_sim(FineTuneConfig::full_dense()),
        ];
        // Cover the no-checkpointing segment layout too.
        let mut no_ckpt = FineTuneConfig::qlora_sparse();
        no_ckpt.gradient_checkpointing = false;
        sims.push(mixtral_sim(no_ckpt));
        sims
    }

    /// The memoized path must match the naive per-layer emission to the
    /// last bit: same expanded record sequence implies the same f64
    /// summation order in every aggregation.
    fn assert_traces_identical(memo: &StepTrace, naive: &StepTrace) {
        assert_eq!(memo.kernel_count(), naive.kernel_count());
        assert_eq!(
            memo.total_seconds().to_bits(),
            naive.total_seconds().to_bits(),
            "total_seconds diverged"
        );
        for stage in [Stage::Forward, Stage::Backward, Stage::Optimizer] {
            assert_eq!(
                memo.stage_seconds(stage).to_bits(),
                naive.stage_seconds(stage).to_bits(),
                "stage_seconds({stage}) diverged"
            );
        }
        let (mu, nu) = (
            memo.moe_overall_utilization(),
            naive.moe_overall_utilization(),
        );
        assert_eq!(mu.seconds.to_bits(), nu.seconds.to_bits());
        assert_eq!(mu.sm_util.to_bits(), nu.sm_util.to_bits());
        assert_eq!(mu.dram_util.to_bits(), nu.dram_util.to_bits());
        assert_eq!(memo.total_flops().to_bits(), naive.total_flops().to_bits());
        // Record-by-record identity (covers desc, cost, stage, section).
        assert!(
            memo.records().eq(naive.records()),
            "record sequences diverged"
        );
    }

    #[test]
    fn memoized_step_matches_naive_bit_for_bit() {
        for sim in preset_sims() {
            for (batch, seq_len) in [(1, 64), (3, 128), (8, 517)] {
                let memo = sim.simulate_step(batch, seq_len);
                let naive = sim.simulate_step_naive(batch, seq_len);
                assert_traces_identical(&memo, &naive);
            }
        }
    }

    #[test]
    fn cache_computes_each_layer_trace_once() {
        // Mixtral has 32 layers; with gradient checkpointing a step needs
        // exactly 3 distinct layer traces (forward, backward, recompute) —
        // not 32 × those.
        let sim = mixtral_sim(FineTuneConfig::qlora_sparse());
        assert!(sim.finetune().gradient_checkpointing);
        assert!(sim.model().num_layers >= 32);
        let t = sim.simulate_step(2, 128);
        let stats = sim.cache_stats();
        assert_eq!(stats.misses, 3, "{stats:?}");
        assert_eq!(stats.entries, 3, "{stats:?}");
        assert!(
            t.unique_kernel_count() < t.kernel_count() / 10,
            "compression too weak: {} unique of {}",
            t.unique_kernel_count(),
            t.kernel_count()
        );

        // A second step at the same shape is answered entirely from cache.
        sim.simulate_step(2, 128);
        let stats = sim.cache_stats();
        assert_eq!(stats.misses, 3, "{stats:?}");
        assert_eq!(stats.hits, 3, "{stats:?}");

        // A new shape adds exactly three more computations.
        sim.simulate_step(4, 128);
        assert_eq!(sim.cache_stats().misses, 6);
    }

    #[test]
    fn steady_state_step_allocates_no_record_buffers() {
        // Satellite of the zero-allocation work: after one warm-up step at a
        // shape, further steps at that shape draw every record buffer from
        // the thread's pool (the drop recycling in `trace.rs` feeds it).
        // The pool is thread-local, so parallel tests cannot perturb this.
        let sim = mixtral_sim(FineTuneConfig::qlora_sparse());
        drop(sim.simulate_step(2, 128));
        let before = record_pool_stats();
        for _ in 0..5 {
            drop(sim.simulate_step(2, 128));
        }
        let after = record_pool_stats();
        assert_eq!(
            after.allocs_since(&before),
            0,
            "steady-state steps allocated record buffers: {before:?} -> {after:?}"
        );
        assert!(after.reuses > before.reuses, "{before:?} -> {after:?}");
        assert!(after.returns > before.returns, "{before:?} -> {after:?}");
    }

    #[test]
    fn trace_cache_counters_mirror_into_registry() {
        let sim = mixtral_sim(FineTuneConfig::qlora_sparse());
        let registry = ftsim_obs::registry();
        let hits0 = registry.counter("sim.trace_cache.hits").get();
        let misses0 = registry.counter("sim.trace_cache.misses").get();
        ftsim_obs::enable();
        sim.simulate_step(2, 128);
        sim.simulate_step(2, 128);
        ftsim_obs::disable();
        let stats = sim.cache_stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 3);
        // The registry is process-global (other tests may add concurrently),
        // so assert our contribution as a lower bound on the delta.
        let hits = registry.counter("sim.trace_cache.hits").get() - hits0;
        let misses = registry.counter("sim.trace_cache.misses").get() - misses0;
        assert!(hits >= stats.hits, "hit delta {hits}");
        assert!(misses >= stats.misses, "miss delta {misses}");
    }

    #[test]
    fn kernel_count_estimators_match_emission() {
        for sim in preset_sims() {
            let naive = sim.simulate_step_naive(2, 96);
            assert_eq!(
                sim.step_kernels(),
                naive.kernel_count(),
                "step_kernels drifted from emission for {:?}/{:?}",
                sim.model().name,
                sim.finetune().method,
            );
            let fwd = sim.build_layer_records(Stage::Forward, LayerKind::Forward, 2, 96);
            assert_eq!(sim.layer_forward_kernels(), fwd.len());
            let bwd = sim.build_layer_records(Stage::Backward, LayerKind::Backward, 2, 96);
            assert_eq!(sim.layer_backward_kernels(), bwd.len());
        }
    }

    proptest! {
        /// Property: across random shapes and every preset, the memoized
        /// trace matches the naive emission exactly — `total_seconds`,
        /// `stage_breakdown`, and `moe_overall_utilization` are compared at
        /// the bit level.
        fn prop_memoized_equals_naive(
            batch in 1usize..=16,
            seq_len in 16usize..512,
            which in 0usize..5,
        ) {
            let sim = &preset_sims()[which];
            let memo = sim.simulate_step(batch, seq_len);
            let naive = sim.simulate_step_naive(batch, seq_len);
            prop_assert_eq!(memo.kernel_count(), naive.kernel_count());
            prop_assert_eq!(
                memo.total_seconds().to_bits(),
                naive.total_seconds().to_bits()
            );
            let (mb, nb) = (memo.stage_breakdown(), naive.stage_breakdown());
            for stage in [Stage::Forward, Stage::Backward, Stage::Optimizer] {
                prop_assert_eq!(
                    mb.seconds(stage.label()).to_bits(),
                    nb.seconds(stage.label()).to_bits()
                );
            }
            let (mu, nu) = (memo.moe_overall_utilization(), naive.moe_overall_utilization());
            prop_assert_eq!(mu.seconds.to_bits(), nu.seconds.to_bits());
            prop_assert_eq!(mu.sm_util.to_bits(), nu.sm_util.to_bits());
            prop_assert_eq!(mu.dram_util.to_bits(), nu.dram_util.to_bits());
        }
    }
}
