//! Priced kernel traces of a fine-tuning step and their breakdowns.

use ftsim_gpu::{Breakdown, KernelCost, KernelDesc, KernelKind, UtilizationSummary};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The three stages of a training step (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Forward pass over the batch.
    Forward,
    /// Backward pass, including gradient-checkpointing re-computation.
    Backward,
    /// Optimizer (AdamW) parameter update.
    Optimizer,
}

impl Stage {
    /// Lower-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Forward => "forward",
            Stage::Backward => "backward",
            Stage::Optimizer => "optimizer",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The model sub-layer a kernel belongs to (paper Fig. 5's categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Section {
    /// Token embedding lookup.
    Embedding,
    /// RMS / layer normalization (input + post-mixer norms).
    Norm,
    /// The sequence mixer: self-attention (Mixtral) or Mamba (BlackMamba).
    Mixer,
    /// The mixture-of-experts block, including router and de-quantization.
    Moe,
    /// Final norm + LM head + loss.
    Head,
    /// Optimizer state update.
    Optimizer,
}

impl Section {
    /// Label for reports; the mixer is named after the architecture
    /// (`"attention"` or `"mamba"`).
    pub fn label(&self, attention_mixer: bool) -> &'static str {
        match self {
            Section::Embedding => "embedding",
            Section::Norm => "norm",
            Section::Mixer => {
                if attention_mixer {
                    "attention"
                } else {
                    "mamba"
                }
            }
            Section::Moe => "moe",
            Section::Head => "lm_head",
            Section::Optimizer => "optimizer",
        }
    }
}

/// One priced kernel launch within a step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Training stage the kernel ran in.
    pub stage: Stage,
    /// Model sub-layer it belongs to.
    pub section: Section,
    /// What the kernel computes.
    pub desc: KernelDesc,
    /// What it cost on the modeled GPU.
    pub cost: KernelCost,
}

/// A run of consecutive kernels that repeats `repeat` times back-to-back.
///
/// Transformer steps launch an identical per-layer trace `num_layers` times;
/// storing the trace once with an explicit repeat count makes [`StepTrace`]
/// construction O(kernels) instead of O(layers × kernels). The records are
/// behind an [`Arc`] so the memoizing [`crate::step::TraceCache`] can share
/// one priced layer trace across segments, steps, and threads without
/// copying it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSegment {
    records: Arc<Vec<KernelRecord>>,
    repeat: usize,
}

impl TraceSegment {
    /// A segment that plays its records once.
    pub fn once(records: impl Into<Arc<Vec<KernelRecord>>>) -> Self {
        TraceSegment::repeated(records, 1)
    }

    /// A segment that plays its records `repeat` times.
    pub fn repeated(records: impl Into<Arc<Vec<KernelRecord>>>, repeat: usize) -> Self {
        TraceSegment {
            records: records.into(),
            repeat,
        }
    }

    /// The distinct records stored (one repetition's worth).
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// How many times the records repeat.
    pub fn repeat(&self) -> usize {
        self.repeat
    }

    /// Kernel launches this segment expands to.
    pub fn kernel_count(&self) -> usize {
        self.records.len() * self.repeat
    }

    /// Reclaims the record storage if this segment is its sole owner (i.e.
    /// the records are not shared with a [`crate::step::TraceCache`] or
    /// another trace). Used by [`StepTrace`]'s drop recycling.
    fn take_records(self) -> Option<Vec<KernelRecord>> {
        Arc::try_unwrap(self.records).ok()
    }
}

/// The complete priced trace of one training step.
///
/// Stored as run-length-compressed [`TraceSegment`]s; [`StepTrace::records`]
/// iterates the expanded launch sequence in exact emission order, so every
/// aggregation below sums floats in the same order as a naively emitted
/// trace and stays bit-identical to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTrace {
    segments: Vec<TraceSegment>,
    /// Batch size simulated.
    pub batch: usize,
    /// (Padded) sequence length simulated.
    pub seq_len: usize,
    /// Whether the mixer is attention (affects section labels).
    pub attention_mixer: bool,
}

impl StepTrace {
    /// Builds a trace from pre-compressed segments.
    pub fn from_segments(
        segments: Vec<TraceSegment>,
        batch: usize,
        seq_len: usize,
        attention_mixer: bool,
    ) -> Self {
        StepTrace {
            segments,
            batch,
            seq_len,
            attention_mixer,
        }
    }

    /// Builds a trace from a flat record list (single segment, repeat 1).
    pub fn from_records(
        records: Vec<KernelRecord>,
        batch: usize,
        seq_len: usize,
        attention_mixer: bool,
    ) -> Self {
        StepTrace::from_segments(
            vec![TraceSegment::once(records)],
            batch,
            seq_len,
            attention_mixer,
        )
    }

    /// The compressed segments, in launch order.
    pub fn segments(&self) -> &[TraceSegment] {
        &self.segments
    }

    /// All kernel launches in emission order, with repeated segments
    /// expanded in place.
    pub fn records(&self) -> impl Iterator<Item = &KernelRecord> + '_ {
        self.segments
            .iter()
            .flat_map(|s| std::iter::repeat_n(s.records.as_slice(), s.repeat).flatten())
    }

    /// Total step latency in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.records().map(|r| r.cost.latency_s).sum()
    }

    /// Number of kernel launches (after segment expansion).
    pub fn kernel_count(&self) -> usize {
        self.segments.iter().map(TraceSegment::kernel_count).sum()
    }

    /// Number of distinct records actually stored (and therefore priced);
    /// `kernel_count / unique_kernel_count` is the memoization ratio.
    pub fn unique_kernel_count(&self) -> usize {
        self.segments.iter().map(|s| s.records.len()).sum()
    }

    /// Latency breakdown by stage (paper Fig. 4).
    pub fn stage_breakdown(&self) -> Breakdown {
        self.records()
            .map(|r| (r.stage.label(), r.cost.latency_s))
            .collect()
    }

    /// Latency breakdown by model sub-layer (paper Fig. 5). The optimizer
    /// stage is excluded, matching the paper's layer-level figure, which
    /// covers forward + backward of the model layers.
    pub fn section_breakdown(&self) -> Breakdown {
        self.records()
            .filter(|r| r.stage != Stage::Optimizer)
            .map(|r| (r.section.label(self.attention_mixer), r.cost.latency_s))
            .collect()
    }

    /// Latency breakdown of the MoE section by kernel family (paper Fig. 6).
    pub fn moe_kernel_breakdown(&self) -> Breakdown {
        self.records()
            .filter(|r| r.section == Section::Moe)
            .map(|r| (r.desc.kind.label(), r.cost.latency_s))
            .collect()
    }

    /// Time-weighted utilization of MoE kernels of the given family
    /// (paper Figs. 9–10 plot these per family and batch size).
    pub fn moe_utilization(&self, kind: KernelKind) -> UtilizationSummary {
        UtilizationSummary::from_costs(
            self.records()
                .filter(|r| r.section == Section::Moe && r.desc.kind == kind)
                .map(|r| &r.cost),
        )
    }

    /// Time-weighted utilization over the whole MoE section.
    pub fn moe_overall_utilization(&self) -> UtilizationSummary {
        UtilizationSummary::from_costs(
            self.records()
                .filter(|r| r.section == Section::Moe)
                .map(|r| &r.cost),
        )
    }

    /// Total FLOPs executed in the step.
    pub fn total_flops(&self) -> f64 {
        self.records().map(|r| r.desc.flops).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.records().map(|r| r.desc.bytes).sum()
    }

    /// Seconds spent in `stage`.
    pub fn stage_seconds(&self, stage: Stage) -> f64 {
        self.records()
            .filter(|r| r.stage == stage)
            .map(|r| r.cost.latency_s)
            .sum()
    }
}

impl Drop for StepTrace {
    /// Returns sole-owned segment storage to the thread's record pool so
    /// steady-state `simulate_step` calls allocate no record buffers.
    /// Segments shared with a trace cache (or a clone) are left untouched —
    /// `Arc::try_unwrap` fails and the storage stays with its other owners.
    fn drop(&mut self) {
        for segment in self.segments.drain(..) {
            if let Some(records) = segment.take_records() {
                crate::step::with_record_pool(|p| p.give(records));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_gpu::cost::Bound;

    fn record(stage: Stage, section: Section, kind: KernelKind, secs: f64) -> KernelRecord {
        KernelRecord {
            stage,
            section,
            desc: KernelDesc::new(kind, 1e9, 1e6, 100.0),
            cost: KernelCost {
                latency_s: secs,
                sm_util: 0.5,
                dram_util: 0.25,
                bound: Bound::Compute,
            },
        }
    }

    fn sample_trace() -> StepTrace {
        StepTrace::from_records(
            vec![
                record(Stage::Forward, Section::Moe, KernelKind::MatMul, 0.6),
                record(Stage::Forward, Section::Mixer, KernelKind::Attention, 0.1),
                record(Stage::Backward, Section::Moe, KernelKind::Dequant, 0.2),
                record(
                    Stage::Optimizer,
                    Section::Optimizer,
                    KernelKind::Optimizer,
                    0.1,
                ),
            ],
            2,
            128,
            true,
        )
    }

    #[test]
    fn totals_and_counts() {
        let t = sample_trace();
        assert!((t.total_seconds() - 1.0).abs() < 1e-12);
        assert_eq!(t.kernel_count(), 4);
        assert!((t.stage_seconds(Stage::Forward) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn stage_breakdown_has_three_stages() {
        let b = sample_trace().stage_breakdown();
        assert!((b.seconds("forward") - 0.7).abs() < 1e-12);
        assert!((b.seconds("backward") - 0.2).abs() < 1e-12);
        assert!((b.seconds("optimizer") - 0.1).abs() < 1e-12);
    }

    #[test]
    fn section_breakdown_excludes_optimizer() {
        let b = sample_trace().section_breakdown();
        assert_eq!(b.seconds("optimizer"), 0.0);
        assert!((b.percent("moe") - 100.0 * 0.8 / 0.9).abs() < 1e-9);
        assert!(b.seconds("attention") > 0.0);
    }

    #[test]
    fn mamba_label_when_not_attention() {
        let mut t = sample_trace();
        t.attention_mixer = false;
        assert!(t.section_breakdown().seconds("mamba") > 0.0);
        assert_eq!(t.section_breakdown().seconds("attention"), 0.0);
    }

    #[test]
    fn moe_kernel_breakdown_filters_section() {
        let b = sample_trace().moe_kernel_breakdown();
        assert!((b.seconds("matmul") - 0.6).abs() < 1e-12);
        assert!((b.seconds("dequant") - 0.2).abs() < 1e-12);
        assert_eq!(b.seconds("attention"), 0.0);
    }

    #[test]
    fn repeated_segment_expands_in_order() {
        let layer = vec![
            record(Stage::Forward, Section::Norm, KernelKind::Norm, 0.1),
            record(Stage::Forward, Section::Moe, KernelKind::MatMul, 0.2),
        ];
        let t = StepTrace::from_segments(
            vec![
                TraceSegment::once(vec![record(
                    Stage::Forward,
                    Section::Embedding,
                    KernelKind::Elementwise,
                    0.05,
                )]),
                TraceSegment::repeated(layer.clone(), 3),
            ],
            1,
            64,
            true,
        );
        assert_eq!(t.kernel_count(), 7);
        assert_eq!(t.unique_kernel_count(), 3);
        let expanded: Vec<&KernelRecord> = t.records().collect();
        assert_eq!(expanded.len(), 7);
        // Expansion preserves launch order: embedding, then (norm, matmul) ×3.
        assert_eq!(expanded[0].section, Section::Embedding);
        for rep in 0..3 {
            assert_eq!(expanded[1 + 2 * rep], &layer[0]);
            assert_eq!(expanded[2 + 2 * rep], &layer[1]);
        }
        assert!((t.total_seconds() - (0.05 + 3.0 * 0.3)).abs() < 1e-12);
        // Aggregations see the expanded sequence, not the compressed one.
        assert!((t.stage_breakdown().seconds("forward") - 0.95).abs() < 1e-12);
        assert!((t.moe_kernel_breakdown().seconds("matmul") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn moe_utilization_by_kind() {
        let t = sample_trace();
        let u = t.moe_utilization(KernelKind::MatMul);
        assert!((u.seconds - 0.6).abs() < 1e-12);
        assert_eq!(t.moe_utilization(KernelKind::Router).seconds, 0.0);
        assert!((t.moe_overall_utilization().seconds - 0.8).abs() < 1e-12);
    }
}
