//! Report assembly over step traces: per-kernel-family utilization tables
//! (paper Figs. 9–10) and formatted breakdown summaries.

use crate::trace::StepTrace;
use ftsim_gpu::{KernelKind, UtilizationSummary};
use serde::{Deserialize, Serialize};

/// Utilization of one kernel family within the MoE layer at one batch size —
/// one bar of the paper's Fig. 9 (SM) / Fig. 10 (DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KindUtilization {
    /// Kernel family.
    pub kind: KernelKind,
    /// Batch size of the trace.
    pub batch: usize,
    /// Time-weighted utilization aggregate.
    pub util: UtilizationSummary,
}

/// The kernel families the paper's MoE-layer hardware study tracks.
pub fn moe_kernel_kinds(quantized: bool) -> Vec<KernelKind> {
    let mut kinds = vec![
        KernelKind::MatMul,
        KernelKind::Router,
        KernelKind::Softmax,
        KernelKind::TopK,
        KernelKind::Elementwise,
        KernelKind::IndexAdd,
    ];
    if quantized {
        kinds.insert(1, KernelKind::Dequant);
    }
    kinds
}

/// Per-family MoE utilization rows for one trace.
pub fn moe_utilization_table(trace: &StepTrace, quantized: bool) -> Vec<KindUtilization> {
    moe_kernel_kinds(quantized)
        .into_iter()
        .map(|kind| KindUtilization {
            kind,
            batch: trace.batch,
            util: trace.moe_utilization(kind),
        })
        .filter(|row| row.util.seconds > 0.0)
        .collect()
}

/// A compact multi-line rendering of a trace's three breakdowns, used by the
/// `repro` binary and examples.
pub fn format_trace_summary(trace: &StepTrace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "step: batch={} seq={} kernels={} total={:.1} ms",
        trace.batch,
        trace.seq_len,
        trace.kernel_count(),
        trace.total_seconds() * 1e3
    );
    let _ = writeln!(out, "by stage:\n{}", trace.stage_breakdown());
    let _ = writeln!(out, "by layer:\n{}", trace.section_breakdown());
    let _ = writeln!(out, "MoE kernels:\n{}", trace.moe_kernel_breakdown());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::StepSimulator;
    use ftsim_gpu::{CostModel, GpuSpec};
    use ftsim_model::{presets, FineTuneConfig};

    fn trace(batch: usize) -> StepTrace {
        StepSimulator::new(
            presets::mixtral_8x7b(),
            FineTuneConfig::qlora_sparse(),
            CostModel::new(GpuSpec::a40()),
        )
        .simulate_step(batch, 128)
    }

    #[test]
    fn quantized_table_includes_dequant() {
        let rows = moe_utilization_table(&trace(1), true);
        assert!(rows.iter().any(|r| r.kind == KernelKind::Dequant));
        assert!(rows.iter().any(|r| r.kind == KernelKind::MatMul));
        assert!(rows.iter().all(|r| r.util.seconds > 0.0));
    }

    #[test]
    fn unquantized_kind_list_drops_dequant() {
        assert!(!moe_kernel_kinds(false).contains(&KernelKind::Dequant));
        assert!(moe_kernel_kinds(true).contains(&KernelKind::Dequant));
    }

    #[test]
    fn matmul_sm_util_increases_with_batch() {
        // The Fig. 9 trend: larger batch → higher matmul SM utilization.
        let small = trace(1);
        let large = trace(8);
        let sm = |t: &StepTrace| t.moe_utilization(KernelKind::MatMul).sm_util;
        assert!(sm(&large) > sm(&small));
    }

    #[test]
    fn dequant_utilization_is_batch_invariant() {
        // The Fig. 9/10 observation: dequant touches only weights, so its
        // utilization does not depend on batch size.
        let a = trace(1).moe_utilization(KernelKind::Dequant);
        let b = trace(8).moe_utilization(KernelKind::Dequant);
        assert!((a.sm_util - b.sm_util).abs() < 1e-9);
        assert!((a.dram_util - b.dram_util).abs() < 1e-9);
    }

    #[test]
    fn overall_dram_util_decreases_with_batch() {
        // Fig. 10: time-weighted memory utilization decreases as batch
        // grows (weights amortized over more queries).
        let small = trace(1).moe_overall_utilization();
        let large = trace(8).moe_overall_utilization();
        assert!(large.dram_util < small.dram_util);
    }

    #[test]
    fn summary_mentions_all_sections() {
        let s = format_trace_summary(&trace(2));
        for key in ["forward", "backward", "optimizer", "moe", "matmul"] {
            assert!(s.contains(key), "missing {key} in summary:\n{s}");
        }
    }
}
