//! Deterministic parallel fan-out for sweeps, grids, and experiment drivers.
//!
//! The paper's figures are dense grids of independent simulations —
//! throughput vs. batch for every model × recipe × GPU (Fig. 8, 14–15),
//! max-batch searches (Table III), sensitivity studies — which makes them
//! embarrassingly parallel. This module provides a scoped-thread pool
//! (`std::thread::scope`, no external dependencies) that maps a pure
//! function over a slice across cores and returns results **in input
//! order**, so every experiment artifact stays byte-for-byte identical no
//! matter how many workers ran.
//!
//! Thread count comes from the `FTSIM_THREADS` environment variable and
//! defaults to the machine's available parallelism. With one thread (or one
//! item) the map degenerates to a plain serial loop — same results, zero
//! threading overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "FTSIM_THREADS";

/// Worker threads to use: `FTSIM_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    resolve_thread_count(std::env::var(THREADS_ENV).ok().as_deref())
}

fn resolve_thread_count(env_value: Option<&str>) -> usize {
    env_value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` using [`thread_count`] workers; results come back
/// in input order regardless of scheduling.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(thread_count(), items, f)
}

/// [`parallel_map`] with an explicit worker count. `threads <= 1` (or a
/// single item) runs serially on the calling thread. A panic in `f`
/// propagates to the caller once the scope joins.
pub fn parallel_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    // Work distribution: a shared atomic cursor hands out the next unclaimed
    // index, so slow items never stall the other workers; each result lands
    // in its input-index slot, which is what makes the output deterministic.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Workers are short-lived (one scope per call), so without a
                // hand-off their thread-local buffer pools would die with
                // them and every call would re-pay warm-up allocations.
                // Adopting/donating via the global stash lets each worker
                // generation inherit the previous one's warm shelves; it
                // never changes results, only where buffers come from.
                ftsim_tensor::pool::stash_adopt();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    let output = f(&items[index]);
                    *slots[index].lock().expect("result slot poisoned") = Some(output);
                }
                ftsim_tensor::pool::stash_donate();
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed and filled before the scope joined")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::StepSimulator;
    use ftsim_gpu::{CostModel, GpuSpec};
    use ftsim_model::{presets, FineTuneConfig};

    #[test]
    fn resolves_env_override_and_defaults() {
        assert_eq!(resolve_thread_count(Some("4")), 4);
        assert_eq!(resolve_thread_count(Some(" 2 ")), 2);
        // Invalid or non-positive values fall back to the machine default.
        let default = resolve_thread_count(None);
        assert!(default >= 1);
        assert_eq!(resolve_thread_count(Some("0")), default);
        assert_eq!(resolve_thread_count(Some("lots")), default);
        assert_eq!(resolve_thread_count(Some("")), default);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 8] {
            let out = parallel_map_with(threads, &items, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_degenerate_inputs() {
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map_with(8, &empty, |&x| x).is_empty());
        assert_eq!(parallel_map_with(8, &[7usize], |&x| x + 1), vec![8]);
    }

    #[test]
    fn simulation_results_identical_across_thread_counts() {
        // The determinism contract behind `repro`: FTSIM_THREADS=1 and =8
        // must produce bit-identical simulation results.
        let sim = StepSimulator::new(
            presets::mixtral_8x7b(),
            FineTuneConfig::qlora_sparse(),
            CostModel::new(GpuSpec::a40()),
        );
        let batches: Vec<usize> = (1..=12).collect();
        let serial = parallel_map_with(1, &batches, |&b| {
            sim.simulate_step(b, 128).total_seconds().to_bits()
        });
        let parallel = parallel_map_with(8, &batches, |&b| {
            sim.simulate_step(b, 128).total_seconds().to_bits()
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn workers_adopt_stashed_warm_shelves() {
        use ftsim_tensor::pool;
        // A bucket size the simulator never uses, so reuses of it can only
        // come from the donations seeded below.
        const LEN: usize = (1 << 18) + 5;
        // Leave room in the global stash, then seed it with warm shelves
        // from short-lived donor threads (4 buffers each).
        while pool::stash_len() > 8 {
            pool::stash_adopt();
        }
        for _ in 0..8 {
            std::thread::spawn(|| {
                for _ in 0..4 {
                    pool::give(pool::take_zeroed(LEN));
                }
                pool::stash_donate();
            })
            .join()
            .unwrap();
        }
        // Each item takes (and drops, rather than gives) one such buffer:
        // a reuse can only be served by an adopted donation, never by the
        // worker's own give-backs.
        let items = [(); 8];
        let reuses: u64 = parallel_map_with(4, &items, |_| {
            let before = pool::stats().reuses;
            let v = pool::take_zeroed(LEN);
            let delta = pool::stats().reuses - before;
            drop(v);
            delta
        })
        .into_iter()
        .sum();
        assert!(
            reuses >= 1,
            "no worker drew from the stashed shelves (adopt hook not wired?)"
        );
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..16).collect();
        parallel_map_with(4, &items, |&x| {
            if x == 9 {
                panic!("boom");
            }
            x
        });
    }
}
