//! Sequence-length sensitivity study (paper §IV-B6).
//!
//! For each sequence length the batch size is set to the maximum that fits
//! in GPU memory, so the token count per step stays roughly constant. The
//! paper reports (figure omitted there for space): Mixtral latency stays
//! almost flat; BlackMamba latency drops slightly (~19–25%) at longer
//! sequences; throughput is higher for shorter sequences.

use crate::engine;
use crate::error::{SimError, SimErrorKind};
use crate::step::StepSimulator;
use ftsim_model::MemoryModel;
use serde::{Deserialize, Serialize};

/// Measurements at one sequence length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Padded sequence length.
    pub seq_len: usize,
    /// Maximum batch size that fits at this length.
    pub max_batch: usize,
    /// Tokens per step (`max_batch × seq_len`).
    pub tokens: usize,
    /// Step latency in seconds.
    pub step_seconds: f64,
    /// Queries per second.
    pub queries_per_second: f64,
    /// Time-weighted MoE SM utilization.
    pub moe_sm_util: f64,
    /// Time-weighted MoE DRAM utilization.
    pub moe_dram_util: f64,
}

/// The sensitivity curve for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityStudy {
    /// Configuration label.
    pub label: String,
    /// One point per sequence length, ascending.
    pub points: Vec<SensitivityPoint>,
    /// Lengths that could not be measured (no batch size fits), each
    /// recorded as a [`SimError`] carrying the label/GPU/seq-len context so
    /// downstream artifacts can report *which* points failed and why.
    pub skipped: Vec<SimError>,
}

impl SensitivityStudy {
    /// Runs the study over `seq_lens` (each at its own max batch size),
    /// fanning the lengths across the [`engine`]'s worker threads. Lengths
    /// whose max batch is zero are recorded in
    /// [`skipped`](SensitivityStudy::skipped) rather than silently dropped.
    pub fn run(sim: &StepSimulator, label: impl Into<String>, seq_lens: &[usize]) -> Self {
        let label = label.into();
        let mem = MemoryModel::new(sim.model(), sim.finetune());
        let gpu = sim.cost_model().spec().clone();
        let _sweep = ftsim_obs::span_lazy("sim.sweep", || format!("sensitivity:{label}"));
        ftsim_obs::registry().gauge_set("sim.sensitivity.points_total", seq_lens.len() as f64);
        let results = engine::parallel_map(seq_lens, |&seq_len| {
            let max_batch = mem.max_batch_size(&gpu, seq_len);
            if max_batch == 0 {
                return Err(SimError::new(SimErrorKind::SequenceDoesNotFit)
                    .with_label(label.clone())
                    .with_gpu(gpu.name.clone())
                    .with_seq_len(seq_len));
            }
            let _point = ftsim_obs::span_lazy("sim.sweep", || format!("seq_len:{seq_len}"));
            ftsim_obs::registry().counter_add("sim.sensitivity.points_done", 1);
            let trace = sim.simulate_step(max_batch, seq_len);
            let secs = trace.total_seconds();
            let util = trace.moe_overall_utilization();
            Ok(SensitivityPoint {
                seq_len,
                max_batch,
                tokens: max_batch * seq_len,
                step_seconds: secs,
                queries_per_second: max_batch as f64 / secs,
                moe_sm_util: util.sm_util,
                moe_dram_util: util.dram_util,
            })
        });
        let mut points = Vec::new();
        let mut skipped = Vec::new();
        for result in results {
            match result {
                Ok(point) => points.push(point),
                Err(err) => skipped.push(err),
            }
        }
        SensitivityStudy {
            label,
            points,
            skipped,
        }
    }

    /// Ratio of the longest-sequence latency to the shortest-sequence
    /// latency (1.0 = perfectly flat).
    pub fn latency_ratio(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(first), Some(last)) => last.step_seconds / first.step_seconds,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_gpu::{CostModel, GpuSpec};
    use ftsim_model::{presets, FineTuneConfig};

    const SEQS: [usize; 5] = [64, 128, 256, 512, 1024];

    fn study(model: ftsim_model::ModelConfig, ft: FineTuneConfig) -> SensitivityStudy {
        let sim = StepSimulator::new(model, ft, CostModel::new(GpuSpec::a40()));
        SensitivityStudy::run(&sim, "test", &SEQS)
    }

    #[test]
    fn max_batch_shrinks_with_sequence_length() {
        let s = study(presets::mixtral_8x7b(), FineTuneConfig::qlora_sparse());
        for w in s.points.windows(2) {
            assert!(w[1].max_batch <= w[0].max_batch);
        }
    }

    #[test]
    fn tokens_per_step_roughly_constant() {
        // "the varying maximum batch sizes ... resulting in a similar number
        // of tokens in each batch."
        let s = study(presets::mixtral_8x7b(), FineTuneConfig::qlora_sparse());
        let tokens: Vec<usize> = s.points.iter().map(|p| p.tokens).collect();
        let max = *tokens.iter().max().unwrap() as f64;
        let min = *tokens.iter().min().unwrap() as f64;
        assert!(max / min < 2.2, "token counts too spread: {tokens:?}");
    }

    #[test]
    fn mixtral_latency_is_nearly_flat() {
        let s = study(presets::mixtral_8x7b(), FineTuneConfig::qlora_sparse());
        let r = s.latency_ratio();
        assert!((0.6..1.3).contains(&r), "latency ratio {r:.2}");
    }

    #[test]
    fn throughput_favors_short_sequences() {
        // "throughput is higher for shorter sequences."
        let s = study(presets::mixtral_8x7b(), FineTuneConfig::qlora_sparse());
        let first = s.points.first().unwrap().queries_per_second;
        let last = s.points.last().unwrap().queries_per_second;
        assert!(first > last);
    }

    #[test]
    fn blackmamba_latency_does_not_grow() {
        // The paper saw BlackMamba latency *shrink* slightly at longer
        // sequences; at minimum it should not grow materially.
        let s = study(presets::blackmamba_2p8b(), FineTuneConfig::full_sparse());
        assert!(s.latency_ratio() < 1.25, "ratio {}", s.latency_ratio());
    }

    #[test]
    fn skips_lengths_that_do_not_fit() {
        let sim = StepSimulator::new(
            presets::mixtral_8x7b(),
            FineTuneConfig::qlora_dense(),
            CostModel::new(GpuSpec::a40()),
        );
        // Dense Mixtral cannot fit batch 1 at very long sequences.
        let s = SensitivityStudy::run(&sim, "dense", &[64, 8192]);
        assert!(s.points.len() <= 1 || s.points.iter().all(|p| p.max_batch >= 1));
        // The skipped length is reported with full context, not dropped.
        if s.points.len() == 1 {
            assert_eq!(s.skipped.len(), 1);
            let err = &s.skipped[0];
            assert_eq!(err.kind, crate::SimErrorKind::SequenceDoesNotFit);
            assert_eq!(err.context.label.as_deref(), Some("dense"));
            assert_eq!(err.context.seq_len, Some(8192));
            assert!(err.context.gpu.is_some());
        }
    }

    #[test]
    fn fitting_lengths_leave_no_skips() {
        let sim = StepSimulator::new(
            presets::mixtral_8x7b(),
            FineTuneConfig::qlora_sparse(),
            CostModel::new(GpuSpec::a40()),
        );
        let s = SensitivityStudy::run(&sim, "fits", &[64, 128, 256]);
        assert_eq!(s.points.len(), 3);
        assert!(s.skipped.is_empty(), "{:?}", s.skipped);
    }
}
