//! # ftsim-sim
//!
//! The fine-tuning execution simulator: it expands a (model, fine-tuning
//! recipe, batch, sequence length) tuple into the full kernel trace of one
//! training step, prices it on a [`ftsim_gpu::CostModel`], and derives every
//! runtime quantity the paper characterizes — execution-time breakdowns
//! (Figs. 4–6), throughput (Fig. 8), SM/DRAM utilization (Figs. 9–10),
//! expert load imbalance (Fig. 11), and the sequence-length sensitivity
//! study (§IV-B6). It also hosts the *real* (CPU-scale, genuinely trained)
//! MoE models behind the trainability study (Fig. 3).
//!
//! ```
//! use ftsim_gpu::{CostModel, GpuSpec};
//! use ftsim_model::{presets, FineTuneConfig};
//! use ftsim_sim::StepSimulator;
//!
//! let sim = StepSimulator::new(
//!     presets::mixtral_8x7b(),
//!     FineTuneConfig::qlora_sparse(),
//!     CostModel::new(GpuSpec::a40()),
//! );
//! let trace = sim.simulate_step(1, 128);
//! // The MoE layer dominates (paper Fig. 5: ~85% on average).
//! let by_section = trace.section_breakdown();
//! assert!(by_section.percent("moe") > 60.0);
//! ```

pub mod ablation;
pub mod engine;
pub mod error;
pub mod learning;
pub mod moetrain;
pub mod report;
pub mod routing;
pub mod sensitivity;
pub mod step;
pub mod throughput;
pub mod trace;

pub use ablation::{Ablation, AblationArm};
pub use engine::{parallel_map, parallel_map_with, thread_count};
pub use error::{SimContext, SimError, SimErrorKind};
pub use learning::{LearningCurve, TrainabilityMatrix};
pub use moetrain::{MoeTrainConfig, MoeTrainOutcome};
pub use routing::{RouterDrift, TokenDistribution};
pub use sensitivity::{SensitivityPoint, SensitivityStudy};
pub use step::{record_pool_stats, CacheStats, StepSimulator, TraceCache};
pub use throughput::{ThroughputPoint, ThroughputSweep};
pub use trace::{KernelRecord, Section, Stage, StepTrace, TraceSegment};
