//! Simulation input errors.
//!
//! DESIGN.md's error policy: malformed *inputs* are recoverable `Error`s,
//! not panics. Sweep entry points validate their batch lists and return
//! [`SimError`] instead of asserting. Errors carry a [`SimContext`] naming
//! the configuration, GPU, and shape that produced them, so profile and
//! trace artifacts can label failed points instead of reporting a bare
//! variant with no provenance.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What went wrong, independent of where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimErrorKind {
    /// A sweep needs at least one batch size.
    EmptyBatches,
    /// Batch sizes must be at least 1.
    ZeroBatch,
    /// Batch sizes must be strictly ascending; `prev` preceded `next`.
    UnsortedBatches {
        /// The earlier entry.
        prev: usize,
        /// The offending entry that does not exceed it.
        next: usize,
    },
    /// No batch size (not even 1) fits in GPU memory at the requested
    /// sequence length.
    SequenceDoesNotFit,
}

impl fmt::Display for SimErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimErrorKind::EmptyBatches => write!(f, "need at least one batch size"),
            SimErrorKind::ZeroBatch => write!(f, "batch sizes must be at least 1"),
            SimErrorKind::UnsortedBatches { prev, next } => write!(
                f,
                "batch sizes must be strictly ascending: {prev} followed by {next}"
            ),
            SimErrorKind::SequenceDoesNotFit => {
                write!(
                    f,
                    "no batch size fits in GPU memory at this sequence length"
                )
            }
        }
    }
}

/// Where an error happened: which configuration, GPU, and shape.
///
/// All fields are optional; callers attach what they know at the failure
/// site via the [`SimError::with_*`](SimError::with_label) builders.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimContext {
    /// Configuration label (e.g. `"Mixtral-S/CS"`).
    pub label: Option<String>,
    /// GPU spec name (e.g. `"NVIDIA A40"`).
    pub gpu: Option<String>,
    /// Padded sequence length of the failing run.
    pub seq_len: Option<usize>,
    /// The offending batch size, when one can be singled out.
    pub batch: Option<usize>,
}

impl SimContext {
    fn is_empty(&self) -> bool {
        self.label.is_none() && self.gpu.is_none() && self.seq_len.is_none() && self.batch.is_none()
    }
}

impl fmt::Display for SimContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(label) = &self.label {
            write!(f, "config {label}")?;
            sep = ", ";
        }
        if let Some(gpu) = &self.gpu {
            write!(f, "{sep}gpu {gpu}")?;
            sep = ", ";
        }
        if let Some(seq_len) = self.seq_len {
            write!(f, "{sep}seq_len {seq_len}")?;
            sep = ", ";
        }
        if let Some(batch) = self.batch {
            write!(f, "{sep}batch {batch}")?;
        }
        Ok(())
    }
}

/// A rejected simulation input: a [`SimErrorKind`] plus the [`SimContext`]
/// it occurred in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimError {
    /// What went wrong.
    pub kind: SimErrorKind,
    /// Which configuration/GPU/shape produced it.
    pub context: SimContext,
}

impl SimError {
    /// An error with empty context.
    pub fn new(kind: SimErrorKind) -> Self {
        SimError {
            kind,
            context: SimContext::default(),
        }
    }

    /// Attaches the configuration label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.context.label = Some(label.into());
        self
    }

    /// Attaches the GPU spec name.
    pub fn with_gpu(mut self, gpu: impl Into<String>) -> Self {
        self.context.gpu = Some(gpu.into());
        self
    }

    /// Attaches the sequence length.
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        self.context.seq_len = Some(seq_len);
        self
    }

    /// Attaches the offending batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.context.batch = Some(batch);
        self
    }
}

impl From<SimErrorKind> for SimError {
    fn from(kind: SimErrorKind) -> Self {
        SimError::new(kind)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if !self.context.is_empty() {
            write!(f, " ({})", self.context)?;
        }
        Ok(())
    }
}

impl std::error::Error for SimError {}

/// Validates a sweep's batch list: non-empty, no zero, strictly ascending.
///
/// Returns the bare [`SimErrorKind`]; the caller attaches its [`SimContext`].
pub(crate) fn validate_batches(batches: &[usize]) -> Result<(), SimErrorKind> {
    if batches.is_empty() {
        return Err(SimErrorKind::EmptyBatches);
    }
    if batches[0] == 0 {
        return Err(SimErrorKind::ZeroBatch);
    }
    if let Some(w) = batches.windows(2).find(|w| w[0] >= w[1]) {
        return Err(SimErrorKind::UnsortedBatches {
            prev: w[0],
            next: w[1],
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_bad_batch_lists() {
        assert_eq!(validate_batches(&[]), Err(SimErrorKind::EmptyBatches));
        assert_eq!(validate_batches(&[0, 1]), Err(SimErrorKind::ZeroBatch));
        assert_eq!(
            validate_batches(&[4, 2]),
            Err(SimErrorKind::UnsortedBatches { prev: 4, next: 2 })
        );
        assert_eq!(
            validate_batches(&[1, 1]),
            Err(SimErrorKind::UnsortedBatches { prev: 1, next: 1 })
        );
        assert_eq!(validate_batches(&[1, 2, 4, 8]), Ok(()));
        assert_eq!(validate_batches(&[3]), Ok(()));
    }

    #[test]
    fn errors_render_messages() {
        assert!(SimError::new(SimErrorKind::EmptyBatches)
            .to_string()
            .contains("at least one"));
        assert!(
            SimError::new(SimErrorKind::UnsortedBatches { prev: 4, next: 2 })
                .to_string()
                .contains("ascending")
        );
        assert!(SimError::new(SimErrorKind::ZeroBatch)
            .to_string()
            .contains("at least 1"));
    }

    #[test]
    fn context_renders_into_the_message() {
        let err = SimError::new(SimErrorKind::ZeroBatch)
            .with_label("Mixtral-S/CS")
            .with_gpu("NVIDIA A40")
            .with_seq_len(79)
            .with_batch(0);
        let msg = err.to_string();
        assert!(msg.contains("config Mixtral-S/CS"), "{msg}");
        assert!(msg.contains("gpu NVIDIA A40"), "{msg}");
        assert!(msg.contains("seq_len 79"), "{msg}");
        assert!(msg.contains("batch 0"), "{msg}");
        // Bare errors render without a trailing context parenthesis.
        let bare = SimError::new(SimErrorKind::ZeroBatch).to_string();
        assert!(!bare.contains('('), "{bare}");
    }
}
