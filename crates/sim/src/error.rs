//! Simulation input errors.
//!
//! DESIGN.md's error policy: malformed *inputs* are recoverable `Error`s,
//! not panics. Sweep entry points validate their batch lists and return
//! [`SimError`] instead of asserting.

use std::fmt;

/// A rejected simulation input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A sweep needs at least one batch size.
    EmptyBatches,
    /// Batch sizes must be at least 1.
    ZeroBatch,
    /// Batch sizes must be strictly ascending; `prev` preceded `next`.
    UnsortedBatches {
        /// The earlier entry.
        prev: usize,
        /// The offending entry that does not exceed it.
        next: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyBatches => write!(f, "need at least one batch size"),
            SimError::ZeroBatch => write!(f, "batch sizes must be at least 1"),
            SimError::UnsortedBatches { prev, next } => write!(
                f,
                "batch sizes must be strictly ascending: {prev} followed by {next}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Validates a sweep's batch list: non-empty, no zero, strictly ascending.
pub(crate) fn validate_batches(batches: &[usize]) -> Result<(), SimError> {
    if batches.is_empty() {
        return Err(SimError::EmptyBatches);
    }
    if batches[0] == 0 {
        return Err(SimError::ZeroBatch);
    }
    if let Some(w) = batches.windows(2).find(|w| w[0] >= w[1]) {
        return Err(SimError::UnsortedBatches {
            prev: w[0],
            next: w[1],
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_bad_batch_lists() {
        assert_eq!(validate_batches(&[]), Err(SimError::EmptyBatches));
        assert_eq!(validate_batches(&[0, 1]), Err(SimError::ZeroBatch));
        assert_eq!(
            validate_batches(&[4, 2]),
            Err(SimError::UnsortedBatches { prev: 4, next: 2 })
        );
        assert_eq!(
            validate_batches(&[1, 1]),
            Err(SimError::UnsortedBatches { prev: 1, next: 1 })
        );
        assert_eq!(validate_batches(&[1, 2, 4, 8]), Ok(()));
        assert_eq!(validate_batches(&[3]), Ok(()));
    }

    #[test]
    fn errors_render_messages() {
        assert!(SimError::EmptyBatches.to_string().contains("at least one"));
        assert!(SimError::UnsortedBatches { prev: 4, next: 2 }
            .to_string()
            .contains("ascending"));
        assert!(SimError::ZeroBatch.to_string().contains("at least 1"));
    }
}
