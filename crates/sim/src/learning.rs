//! Calibrated learning curves (paper Fig. 3).
//!
//! The paper fine-tunes Mixtral and BlackMamba for 10 epochs and reports
//! test accuracy per epoch on Hellaswag (HE) and GSM8K (GS), dense vs
//! sparse. Running those fine-tuning jobs requires the real checkpoints and
//! GPUs, so this module provides a *calibrated reconstruction*: saturating
//! exponential curves whose anchors come from the paper's stated facts —
//! pre-trained accuracy (<25% Mixtral, <10% BlackMamba), convergence within
//! 10 epochs, GS near peak after 1 epoch, BlackMamba needing ~5 epochs on
//! HE, BlackMamba inadequate on GS, and the sparse Mixtral-HE overfitting
//! dip between epochs 4 and 5.
//!
//! The *emergent* counterpart — genuinely trained MoE models exhibiting the
//! same relative structure — lives in [`crate::moetrain`].

use serde::{Deserialize, Serialize};

/// Accuracy-vs-epoch curve for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    /// Configuration label, e.g. `"Mixtral-S/HE"`.
    pub label: String,
    /// Test accuracy at epochs 0 (pre-trained) through 10.
    pub accuracy: Vec<f64>,
}

impl LearningCurve {
    /// Accuracy of the pre-trained model (epoch 0).
    pub fn pretrained(&self) -> f64 {
        self.accuracy[0]
    }

    /// Best accuracy over all epochs.
    pub fn peak(&self) -> f64 {
        self.accuracy.iter().copied().fold(0.0, f64::max)
    }

    /// First epoch within `tolerance` of the peak.
    pub fn convergence_epoch(&self, tolerance: f64) -> usize {
        let peak = self.peak();
        self.accuracy
            .iter()
            .position(|&a| a >= peak - tolerance)
            .expect("peak exists")
    }
}

/// Parameters of one saturating curve with an optional overfitting dip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct CurveParams {
    base: f64,
    peak: f64,
    tau: f64,
    /// `(center_epoch, width, depth)` of a transient accuracy drop.
    dip: Option<(f64, f64, f64)>,
}

impl CurveParams {
    fn accuracy_at(&self, epoch: f64) -> f64 {
        let mut acc = self.base + (self.peak - self.base) * (1.0 - (-epoch / self.tau).exp());
        if let Some((center, width, depth)) = self.dip {
            acc -= depth * (-((epoch - center) / width).powi(2)).exp();
        }
        acc.clamp(0.0, 1.0)
    }

    fn curve(&self, label: &str, epochs: usize) -> LearningCurve {
        LearningCurve {
            label: label.to_string(),
            accuracy: (0..=epochs).map(|e| self.accuracy_at(e as f64)).collect(),
        }
    }
}

/// The full Fig. 3 matrix: (model × dataset × sparsity) learning curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainabilityMatrix {
    /// All eight curves.
    pub curves: Vec<LearningCurve>,
}

impl TrainabilityMatrix {
    /// Builds the calibrated Fig. 3 reconstruction (10 epochs).
    pub fn fig3() -> Self {
        let spec: [(&str, CurveParams); 8] = [
            (
                "Mixtral-D/HE",
                CurveParams {
                    base: 0.24,
                    peak: 0.85,
                    tau: 1.2,
                    dip: None,
                },
            ),
            (
                // The paper's outlier: sparse Mixtral on the easy task dips
                // between epochs 4 and 5 (overfitting) but recovers to a
                // similar peak.
                "Mixtral-S/HE",
                CurveParams {
                    base: 0.24,
                    peak: 0.84,
                    tau: 1.3,
                    dip: Some((4.5, 0.7, 0.14)),
                },
            ),
            (
                "Mixtral-D/GS",
                CurveParams {
                    base: 0.14,
                    peak: 0.47,
                    tau: 0.5,
                    dip: None,
                },
            ),
            (
                "Mixtral-S/GS",
                CurveParams {
                    base: 0.14,
                    peak: 0.46,
                    tau: 0.55,
                    dip: None,
                },
            ),
            (
                "BlackMamba-D/HE",
                CurveParams {
                    base: 0.08,
                    peak: 0.63,
                    tau: 2.2,
                    dip: None,
                },
            ),
            (
                "BlackMamba-S/HE",
                CurveParams {
                    base: 0.08,
                    peak: 0.61,
                    tau: 2.4,
                    dip: None,
                },
            ),
            (
                "BlackMamba-D/GS",
                CurveParams {
                    base: 0.03,
                    peak: 0.09,
                    tau: 0.5,
                    dip: None,
                },
            ),
            (
                "BlackMamba-S/GS",
                CurveParams {
                    base: 0.03,
                    peak: 0.08,
                    tau: 0.55,
                    dip: None,
                },
            ),
        ];
        TrainabilityMatrix {
            curves: spec.iter().map(|(label, p)| p.curve(label, 10)).collect(),
        }
    }

    /// Finds a curve by its label.
    pub fn curve(&self, label: &str) -> Option<&LearningCurve> {
        self.curves.iter().find(|c| c.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> TrainabilityMatrix {
        TrainabilityMatrix::fig3()
    }

    #[test]
    fn pretrained_accuracy_matches_paper_bounds() {
        // "HE and GS have under 25% on Mixtral and under 10% on BlackMamba."
        let m = matrix();
        for c in &m.curves {
            if c.label.starts_with("Mixtral") {
                assert!(c.pretrained() < 0.25, "{}", c.label);
            } else {
                assert!(c.pretrained() < 0.10, "{}", c.label);
            }
        }
    }

    #[test]
    fn ten_epochs_reach_peak() {
        // Takeaway 2: fine-tuning takes < 10 epochs to reach peak accuracy.
        for c in &matrix().curves {
            assert!(
                c.convergence_epoch(0.02) <= 10,
                "{} converges at {}",
                c.label,
                c.convergence_epoch(0.02)
            );
        }
    }

    #[test]
    fn gs_converges_by_first_epoch() {
        // "On GS, both models are close to their peak accuracy at the first
        // epoch."
        let m = matrix();
        for label in ["Mixtral-D/GS", "BlackMamba-D/GS"] {
            let c = m.curve(label).unwrap();
            assert!(
                c.accuracy[1] > 0.8 * c.peak(),
                "{label}: epoch-1 accuracy {} vs peak {}",
                c.accuracy[1],
                c.peak()
            );
        }
    }

    #[test]
    fn blackmamba_he_needs_about_five_epochs() {
        // "it took BlackMamba 5 epochs to converge on HE."
        let c = matrix().curve("BlackMamba-D/HE").unwrap().clone();
        let conv = c.convergence_epoch(0.05);
        assert!((4..=7).contains(&conv), "converged at {conv}");
    }

    #[test]
    fn mixtral_beats_blackmamba_everywhere() {
        // Paper observation 3.
        let m = matrix();
        for ds in ["HE", "GS"] {
            let mx = m.curve(&format!("Mixtral-D/{ds}")).unwrap().peak();
            let bm = m.curve(&format!("BlackMamba-D/{ds}")).unwrap().peak();
            assert!(mx > bm, "{ds}: {mx} vs {bm}");
        }
    }

    #[test]
    fn he_easier_than_gs() {
        // Paper observation 4: both models do better on HE than GS.
        let m = matrix();
        for model in ["Mixtral", "BlackMamba"] {
            let he = m.curve(&format!("{model}-D/HE")).unwrap().peak();
            let gs = m.curve(&format!("{model}-D/GS")).unwrap().peak();
            assert!(he > gs);
        }
    }

    #[test]
    fn sparse_matches_dense_peak() {
        // Takeaway 1: sparse trains as well as dense (peaks within 3 pts).
        let m = matrix();
        for (d, s) in [
            ("Mixtral-D/HE", "Mixtral-S/HE"),
            ("Mixtral-D/GS", "Mixtral-S/GS"),
            ("BlackMamba-D/HE", "BlackMamba-S/HE"),
        ] {
            let dp = m.curve(d).unwrap().peak();
            let sp = m.curve(s).unwrap().peak();
            assert!((dp - sp).abs() < 0.03, "{d} {dp} vs {s} {sp}");
        }
    }

    #[test]
    fn sparse_mixtral_he_dips_between_epochs_4_and_5() {
        // The paper's overfitting outlier.
        let c = matrix().curve("Mixtral-S/HE").unwrap().clone();
        let dip_region = c.accuracy[4].min(c.accuracy[5]);
        assert!(dip_region < c.accuracy[3], "no dip: {:?}", c.accuracy);
        assert!(c.accuracy[10] > dip_region, "no recovery: {:?}", c.accuracy);
    }

    #[test]
    fn blackmamba_gs_is_inadequate() {
        // The paper drops BlackMamba-MATH from later studies for this.
        assert!(matrix().curve("BlackMamba-D/GS").unwrap().peak() < 0.15);
    }
}
