//! Ablation studies of the design choices the paper's setup commits to
//! (§III): gradient checkpointing, QLoRA quantization, and expert sparsity.
//!
//! The paper *uses* these techniques; the ablations quantify what each one
//! buys (memory) and costs (runtime) on the same simulated A40, which is
//! exactly the trade-off discussion of its Fig. 4 / Fig. 6 commentary
//! ("quantization reduces model size ... but can increase computation
//! time", "gradient checkpointing saves memory but increases the backward
//! stage runtime").

use crate::step::StepSimulator;
use ftsim_gpu::CostModel;
use ftsim_model::{FineTuneConfig, FineTuneMethod, MemoryModel, ModelConfig};
use serde::{Deserialize, Serialize};

/// One arm of an ablation: a named recipe variant with its measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationArm {
    /// Variant label (e.g. `"checkpointing=off"`).
    pub label: String,
    /// Step latency in seconds at the probe batch size.
    pub step_seconds: f64,
    /// Backward-stage share of the step.
    pub backward_share: f64,
    /// Maximum batch size on the probe GPU.
    pub max_batch: usize,
    /// Static (batch-independent) memory footprint in GB.
    pub static_gb: f64,
}

/// A pairwise ablation: baseline (the paper's choice) vs variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ablation {
    /// What is being ablated.
    pub name: String,
    /// The paper's configuration.
    pub baseline: AblationArm,
    /// The ablated configuration.
    pub variant: AblationArm,
}

impl Ablation {
    /// Runtime ratio `variant / baseline` (> 1 means the variant is slower).
    pub fn slowdown(&self) -> f64 {
        self.variant.step_seconds / self.baseline.step_seconds
    }

    /// Max-batch ratio `variant / baseline`.
    pub fn capacity_ratio(&self) -> f64 {
        if self.baseline.max_batch == 0 {
            return f64::INFINITY;
        }
        self.variant.max_batch as f64 / self.baseline.max_batch as f64
    }
}

fn measure(
    model: &ModelConfig,
    ft: FineTuneConfig,
    cost: &CostModel,
    label: impl Into<String>,
    batch: usize,
    seq: usize,
) -> AblationArm {
    let sim = StepSimulator::new(model.clone(), ft, cost.clone());
    let trace = sim.simulate_step(batch, seq);
    let mem = MemoryModel::new(model, &ft);
    AblationArm {
        label: label.into(),
        step_seconds: trace.total_seconds(),
        backward_share: trace.stage_seconds(crate::trace::Stage::Backward) / trace.total_seconds(),
        max_batch: mem.max_batch_size(cost.spec(), seq),
        static_gb: mem.breakdown(0, 0).static_gb(),
    }
}

/// Ablates gradient checkpointing for the given recipe.
///
/// The paper's finding: checkpointing saves activation memory but inflates
/// the backward stage with a forward re-computation.
pub fn ablate_checkpointing(
    model: &ModelConfig,
    base: FineTuneConfig,
    cost: &CostModel,
    batch: usize,
    seq: usize,
) -> Ablation {
    let mut off = base;
    off.gradient_checkpointing = false;
    Ablation {
        name: "gradient checkpointing".into(),
        baseline: measure(model, base, cost, "checkpointing=on", batch, seq),
        variant: measure(model, off, cost, "checkpointing=off", batch, seq),
    }
}

/// Ablates QLoRA quantization (NF4 base weights) against bf16 LoRA with the
/// same adapter rank.
///
/// The paper's finding: quantization shrinks the resident model (enabling
/// larger batches / fitting at all) at the price of de-quantization compute.
pub fn ablate_quantization(
    model: &ModelConfig,
    base: FineTuneConfig,
    cost: &CostModel,
    batch: usize,
    seq: usize,
) -> Ablation {
    let rank = base.method.lora_rank().unwrap_or(16);
    let mut bf16 = base;
    bf16.method = FineTuneMethod::Lora { rank };
    Ablation {
        name: "NF4 quantization".into(),
        baseline: measure(model, base, cost, "qlora-nf4", batch, seq),
        variant: measure(model, bf16, cost, "lora-bf16", batch, seq),
    }
}

/// Ablates the occupancy shape parameter κ of the GPU cost model itself —
/// a robustness check that the paper-shaped conclusions (sparse wins, log
/// saturation) do not hinge on one calibration constant.
pub fn kappa_sensitivity(
    model: &ModelConfig,
    ft: FineTuneConfig,
    gpu: ftsim_gpu::GpuSpec,
    seq: usize,
    kappas: &[f64],
) -> Vec<(f64, f64, f64)> {
    kappas
        .iter()
        .map(|&kappa| {
            let calib = ftsim_gpu::CalibrationProfile {
                occupancy_kappa: kappa,
                ..Default::default()
            };
            let cost = CostModel::with_calibration(gpu.clone(), calib);
            let sim = StepSimulator::new(model.clone(), ft, cost);
            let q1 = 1.0 / sim.simulate_step(1, seq).total_seconds();
            let q8 = 8.0 / sim.simulate_step(8, seq).total_seconds();
            (kappa, q1, q8)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_gpu::GpuSpec;
    use ftsim_model::presets;

    fn a40() -> CostModel {
        CostModel::new(GpuSpec::a40())
    }

    #[test]
    fn checkpointing_trades_runtime_for_memory() {
        let model = presets::mixtral_8x7b();
        let ab = ablate_checkpointing(&model, FineTuneConfig::qlora_sparse(), &a40(), 2, 128);
        // Turning it OFF must be faster...
        assert!(ab.slowdown() < 1.0, "off/on runtime {}", ab.slowdown());
        // ...and shrink the backward share (no recomputation).
        assert!(ab.variant.backward_share < ab.baseline.backward_share);
    }

    #[test]
    fn quantization_shrinks_weights_but_costs_runtime() {
        let model = presets::mixtral_8x7b();
        let ab = ablate_quantization(&model, FineTuneConfig::qlora_sparse(), &a40(), 1, 128);
        // bf16 LoRA holds 46.7B × 2B ≈ 93 GB of weights — more static
        // memory than NF4...
        assert!(ab.variant.static_gb > 2.0 * ab.baseline.static_gb);
        // ...so it cannot fit on the 48 GB A40 at all (the paper's reason
        // for QLoRA), while QLoRA fits a real batch.
        assert_eq!(ab.variant.max_batch, 0);
        assert!(ab.baseline.max_batch >= 1);
        // And without dequant kernels the (hypothetical) step is faster.
        assert!(ab.slowdown() < 1.0);
    }

    #[test]
    fn checkpointing_ablation_leaves_capacity_direction_sane() {
        // Note: activation calibration is per-recipe-family, so the memory
        // side of the checkpointing ablation is inherited; assert only that
        // capacity does not *grow* when recomputation is dropped under the
        // same calibration.
        let model = presets::blackmamba_2p8b();
        let ab = ablate_checkpointing(&model, FineTuneConfig::full_sparse(), &a40(), 2, 128);
        assert!(ab.capacity_ratio() <= 1.0 + 1e-9);
    }

    #[test]
    fn conclusions_robust_across_kappa() {
        // Sparse-over-dense and batch-scaling survive a 4× swing in the
        // occupancy constant.
        let model = presets::mixtral_8x7b();
        for &(kappa,) in &[(0.5,), (1.0,), (2.0,)] {
            let rows_s = kappa_sensitivity(
                &model,
                FineTuneConfig::qlora_sparse(),
                GpuSpec::a40(),
                79,
                &[kappa],
            );
            let rows_d = kappa_sensitivity(
                &model,
                FineTuneConfig::qlora_dense(),
                GpuSpec::a40(),
                79,
                &[kappa],
            );
            let (_, s1, s8) = rows_s[0];
            let (_, d1, _) = rows_d[0];
            assert!(s8 > s1, "kappa {kappa}: batching should help");
            assert!(s1 > d1, "kappa {kappa}: sparse should beat dense at bs1");
        }
    }
}
