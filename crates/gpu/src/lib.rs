//! # ftsim-gpu
//!
//! GPU hardware modeling for the `ftsim` workspace: device specifications,
//! an analytical (roofline + occupancy) kernel cost model standing in for a
//! physical GPU, Nsight-Compute-style profile aggregation, and cloud GPU
//! pricing.
//!
//! The paper characterizes LLM fine-tuning on an NVIDIA A40 and validates its
//! analytical cost model on A100-40GB, A100-80GB and H100-80GB. All four
//! devices are available from [`GpuSpec`]'s catalog:
//!
//! ```
//! use ftsim_gpu::{CostModel, GpuSpec, KernelDesc, KernelKind};
//!
//! let gpu = GpuSpec::a40();
//! let model = CostModel::new(gpu);
//! // A 4096x4096x4096 bf16 GEMM:
//! let gemm = KernelDesc::matmul(4096, 4096, 4096, 2);
//! let cost = model.kernel_cost(&gemm);
//! assert!(cost.latency_s > 0.0);
//! assert!(cost.sm_util <= 1.0 && cost.dram_util <= 1.0);
//! ```

pub mod cost;
pub mod kernel;
pub mod pricing;
pub mod profile;
pub mod spec;

pub use cost::{CalibrationProfile, CostModel, KernelCost};
pub use kernel::{KernelDesc, KernelKind};
pub use pricing::{CloudProvider, PriceTable};
pub use profile::{Breakdown, UtilizationSummary};
pub use spec::GpuSpec;

/// Bytes in one gibibyte.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
