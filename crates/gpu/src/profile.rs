//! Nsight-Compute-style aggregation of priced kernels: time breakdowns and
//! time-weighted utilization summaries.

use crate::cost::KernelCost;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A latency breakdown keyed by an arbitrary label (stage name, layer name,
/// kernel family, …), as plotted in the paper's Figs. 4–6.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    entries: BTreeMap<String, f64>,
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `seconds` to `key`'s bucket. Looks up by `&str` first so the
    /// per-record hot path (sweeps price one call per kernel record) only
    /// allocates a `String` the first time a key appears.
    pub fn add(&mut self, key: impl Into<String> + AsRef<str>, seconds: f64) {
        match self.entries.get_mut(key.as_ref()) {
            Some(slot) => *slot += seconds,
            None => {
                self.entries.insert(key.into(), seconds);
            }
        }
    }

    /// Seconds accumulated for `key` (0 if absent).
    pub fn seconds(&self, key: &str) -> f64 {
        self.entries.get(key).copied().unwrap_or(0.0)
    }

    /// Total seconds across all buckets.
    pub fn total(&self) -> f64 {
        self.entries.values().sum()
    }

    /// `key`'s share of the total, in percent (0 if the total is 0).
    pub fn percent(&self, key: &str) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.seconds(key) / total
        }
    }

    /// `(key, seconds)` pairs sorted by descending time.
    pub fn sorted(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self.entries.iter().map(|(k, &s)| (k.clone(), s)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// Iterates over `(key, seconds)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no keys were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for (key, secs) in self.sorted() {
            let pct = if total > 0.0 {
                100.0 * secs / total
            } else {
                0.0
            };
            writeln!(f, "  {key:<16} {:>10.3} ms  {pct:>5.1}%", secs * 1e3)?;
        }
        writeln!(f, "  {:<16} {:>10.3} ms  100.0%", "TOTAL", total * 1e3)
    }
}

impl<K: Into<String> + AsRef<str>> FromIterator<(K, f64)> for Breakdown {
    fn from_iter<T: IntoIterator<Item = (K, f64)>>(iter: T) -> Self {
        let mut b = Breakdown::new();
        for (k, s) in iter {
            b.add(k, s);
        }
        b
    }
}

impl Extend<(String, f64)> for Breakdown {
    fn extend<T: IntoIterator<Item = (String, f64)>>(&mut self, iter: T) {
        for (k, s) in iter {
            self.add(k, s);
        }
    }
}

/// Time-weighted utilization aggregate over a set of priced kernels — the
/// quantity plotted per kernel family in the paper's Figs. 9 and 10
/// ("utilization weighted by the amount of time each kernel takes").
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSummary {
    /// Total kernel-seconds aggregated.
    pub seconds: f64,
    /// Time-weighted mean SM utilization in `[0, 1]`.
    pub sm_util: f64,
    /// Time-weighted mean DRAM bandwidth utilization in `[0, 1]`.
    pub dram_util: f64,
}

impl UtilizationSummary {
    /// Aggregates priced kernels into a time-weighted summary.
    pub fn from_costs<'a>(costs: impl IntoIterator<Item = &'a KernelCost>) -> Self {
        let mut seconds = 0.0;
        let mut sm = 0.0;
        let mut dram = 0.0;
        for c in costs {
            seconds += c.latency_s;
            sm += c.sm_util * c.latency_s;
            dram += c.dram_util * c.latency_s;
        }
        if seconds == 0.0 {
            UtilizationSummary::default()
        } else {
            UtilizationSummary {
                seconds,
                sm_util: sm / seconds,
                dram_util: dram / seconds,
            }
        }
    }

    /// Publishes the summary into the obs metrics registry as gauges
    /// (`{prefix}.sm_util`, `{prefix}.dram_util`, `{prefix}.seconds`) — the
    /// simulated analogue of reading Nsight's `sm__throughput` /
    /// `dram__throughput` counters after a profiled region. No-op while
    /// observability is off.
    pub fn publish_gauges(&self, prefix: &str) {
        if !ftsim_obs::enabled() {
            return;
        }
        let registry = ftsim_obs::registry();
        registry.gauge_set(&format!("{prefix}.sm_util"), self.sm_util);
        registry.gauge_set(&format!("{prefix}.dram_util"), self.dram_util);
        registry.gauge_set(&format!("{prefix}.seconds"), self.seconds);
    }

    /// Merges two summaries, preserving time weighting.
    pub fn merge(self, other: UtilizationSummary) -> UtilizationSummary {
        let seconds = self.seconds + other.seconds;
        if seconds == 0.0 {
            return UtilizationSummary::default();
        }
        UtilizationSummary {
            seconds,
            sm_util: (self.sm_util * self.seconds + other.sm_util * other.seconds) / seconds,
            dram_util: (self.dram_util * self.seconds + other.dram_util * other.seconds) / seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Bound;

    fn cost(latency: f64, sm: f64, dram: f64) -> KernelCost {
        KernelCost {
            latency_s: latency,
            sm_util: sm,
            dram_util: dram,
            bound: Bound::Compute,
        }
    }

    #[test]
    fn breakdown_accumulates_and_ranks() {
        let mut b = Breakdown::new();
        b.add("moe", 0.8);
        b.add("attention", 0.15);
        b.add("moe", 0.05);
        assert!((b.seconds("moe") - 0.85).abs() < 1e-12);
        assert!((b.total() - 1.0).abs() < 1e-12);
        assert!((b.percent("moe") - 85.0).abs() < 1e-9);
        assert_eq!(b.sorted()[0].0, "moe");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn breakdown_missing_key_is_zero() {
        let b = Breakdown::new();
        assert_eq!(b.seconds("nope"), 0.0);
        assert_eq!(b.percent("nope"), 0.0);
        assert!(b.is_empty());
    }

    #[test]
    fn breakdown_from_iterator() {
        let b: Breakdown = vec![("a", 1.0), ("b", 2.0), ("a", 3.0)]
            .into_iter()
            .collect();
        assert_eq!(b.seconds("a"), 4.0);
        assert_eq!(b.seconds("b"), 2.0);
    }

    #[test]
    fn utilization_is_time_weighted() {
        // A long kernel at 100% and a short one at 0% → mean near 100%.
        let costs = [cost(0.9, 1.0, 0.2), cost(0.1, 0.0, 1.0)];
        let u = UtilizationSummary::from_costs(costs.iter());
        assert!((u.sm_util - 0.9).abs() < 1e-9);
        assert!((u.dram_util - (0.2 * 0.9 + 1.0 * 0.1)).abs() < 1e-9);
        assert!((u.seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_utilization_is_zero() {
        let u = UtilizationSummary::from_costs(std::iter::empty());
        assert_eq!(u.seconds, 0.0);
        assert_eq!(u.sm_util, 0.0);
    }

    #[test]
    fn publish_gauges_exports_to_registry() {
        let u = UtilizationSummary::from_costs([cost(2.0, 0.5, 0.25)].iter());
        ftsim_obs::enable();
        u.publish_gauges("test.gpu.profile");
        ftsim_obs::disable();
        let registry = ftsim_obs::registry();
        assert_eq!(registry.gauge("test.gpu.profile.sm_util").get(), 0.5);
        assert_eq!(registry.gauge("test.gpu.profile.dram_util").get(), 0.25);
        assert_eq!(registry.gauge("test.gpu.profile.seconds").get(), 2.0);
    }

    #[test]
    fn merge_equals_joint_aggregation() {
        let a = [cost(0.5, 0.8, 0.3), cost(0.2, 0.4, 0.6)];
        let b = [cost(0.3, 0.1, 0.9)];
        let merged = UtilizationSummary::from_costs(a.iter())
            .merge(UtilizationSummary::from_costs(b.iter()));
        let joint = UtilizationSummary::from_costs(a.iter().chain(b.iter()));
        assert!((merged.sm_util - joint.sm_util).abs() < 1e-12);
        assert!((merged.dram_util - joint.dram_util).abs() < 1e-12);
        assert!((merged.seconds - joint.seconds).abs() < 1e-12);
    }

    #[test]
    fn display_lists_total() {
        let mut b = Breakdown::new();
        b.add("x", 0.001);
        let s = b.to_string();
        assert!(s.contains("TOTAL"));
        assert!(s.contains('x'));
    }
}
