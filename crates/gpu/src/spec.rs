//! GPU device specifications and the catalog of devices used in the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Static hardware parameters of a GPU.
///
/// Peak compute refers to dense bf16/fp16 tensor-core throughput, the number
/// that bounds GEMM-heavy fine-tuning workloads. Values are the public
/// datasheet numbers for each device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A40"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Peak dense bf16 tensor throughput in TFLOP/s.
    pub peak_tflops: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// DRAM capacity in GB (decimal, as marketed).
    pub mem_gb: f64,
    /// Fixed per-kernel launch overhead in microseconds (driver + scheduling).
    pub kernel_launch_overhead_us: f64,
}

impl GpuSpec {
    /// NVIDIA A40 48 GB (Ampere) — the paper's primary characterization GPU.
    pub fn a40() -> Self {
        GpuSpec {
            name: "A40".into(),
            sm_count: 84,
            peak_tflops: 149.7,
            mem_bandwidth_gbps: 696.0,
            mem_gb: 48.0,
            kernel_launch_overhead_us: 8.0,
        }
    }

    /// NVIDIA A100 40 GB (SXM).
    pub fn a100_40() -> Self {
        GpuSpec {
            name: "A100-40GB".into(),
            sm_count: 108,
            peak_tflops: 312.0,
            mem_bandwidth_gbps: 1555.0,
            mem_gb: 40.0,
            kernel_launch_overhead_us: 8.0,
        }
    }

    /// NVIDIA A100 80 GB (SXM).
    pub fn a100_80() -> Self {
        GpuSpec {
            name: "A100-80GB".into(),
            sm_count: 108,
            peak_tflops: 312.0,
            mem_bandwidth_gbps: 2039.0,
            mem_gb: 80.0,
            kernel_launch_overhead_us: 8.0,
        }
    }

    /// NVIDIA H100 80 GB (SXM).
    pub fn h100_80() -> Self {
        GpuSpec {
            name: "H100-80GB".into(),
            sm_count: 132,
            peak_tflops: 989.0,
            mem_bandwidth_gbps: 3350.0,
            mem_gb: 80.0,
            kernel_launch_overhead_us: 6.0,
        }
    }

    /// The four devices evaluated in the paper, in its order.
    pub fn catalog() -> Vec<GpuSpec> {
        vec![
            GpuSpec::a40(),
            GpuSpec::a100_40(),
            GpuSpec::a100_80(),
            GpuSpec::h100_80(),
        ]
    }

    /// Case-insensitive catalog lookup by marketing name. Accepts the short
    /// aliases used in scenario specs (`"a100-40"` for `"A100-40GB"`, etc.),
    /// so declarative query specs canonicalize to one device per spelling.
    pub fn by_name(name: &str) -> Option<GpuSpec> {
        let wanted = name.trim().to_ascii_lowercase();
        Self::catalog().into_iter().find(|gpu| {
            let full = gpu.name.to_ascii_lowercase();
            full == wanted || full.trim_end_matches("gb") == wanted
        })
    }

    /// A hypothetical future device: this device's compute with `mem_gb`
    /// of memory. Used for the paper's Fig. 13 projection to 100 GB / 120 GB
    /// GPUs.
    pub fn with_memory(&self, mem_gb: f64) -> GpuSpec {
        GpuSpec {
            name: format!("{}@{mem_gb:.0}GB", self.name),
            mem_gb,
            ..self.clone()
        }
    }

    /// Machine balance: FLOPs per byte at peak (roofline ridge point).
    pub fn ridge_flops_per_byte(&self) -> f64 {
        (self.peak_tflops * 1e12) / (self.mem_bandwidth_gbps * 1e9)
    }

    /// DRAM capacity in bytes (decimal GB).
    pub fn mem_bytes(&self) -> f64 {
        self.mem_gb * 1e9
    }
}

impl fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} SMs, {:.0} TFLOP/s bf16, {:.0} GB/s, {:.0} GB)",
            self.name, self.sm_count, self.peak_tflops, self.mem_bandwidth_gbps, self.mem_gb
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_devices() {
        let names: Vec<String> = GpuSpec::catalog().into_iter().map(|g| g.name).collect();
        assert_eq!(names, ["A40", "A100-40GB", "A100-80GB", "H100-80GB"]);
        // Lookup is case-insensitive and accepts the GB-less alias.
        assert_eq!(GpuSpec::by_name("a40").unwrap().name, "A40");
        assert_eq!(GpuSpec::by_name("A100-40").unwrap().name, "A100-40GB");
        assert_eq!(GpuSpec::by_name("h100-80gb").unwrap().name, "H100-80GB");
        assert!(GpuSpec::by_name("tpu-v5").is_none());
    }

    #[test]
    fn a40_is_the_48gb_ampere_card() {
        let g = GpuSpec::a40();
        assert_eq!(g.mem_gb, 48.0);
        assert_eq!(g.sm_count, 84);
    }

    #[test]
    fn h100_outclasses_a100_in_both_dimensions() {
        let (h, a) = (GpuSpec::h100_80(), GpuSpec::a100_80());
        assert!(h.peak_tflops > a.peak_tflops);
        assert!(h.mem_bandwidth_gbps > a.mem_bandwidth_gbps);
    }

    #[test]
    fn with_memory_projects_capacity_only() {
        let base = GpuSpec::a40();
        let big = base.with_memory(120.0);
        assert_eq!(big.mem_gb, 120.0);
        assert_eq!(big.peak_tflops, base.peak_tflops);
        assert!(big.name.contains("120"));
    }

    #[test]
    fn ridge_point_is_flops_per_byte() {
        let g = GpuSpec::a40();
        let ridge = g.ridge_flops_per_byte();
        assert!((ridge - 149.7e12 / 696e9).abs() < 1e-6);
        // Modern GPUs are strongly compute-dense: ridge >> 1.
        assert!(ridge > 100.0);
    }

    #[test]
    fn mem_bytes_uses_decimal_gb() {
        assert_eq!(GpuSpec::a40().mem_bytes(), 48.0e9);
    }
}
