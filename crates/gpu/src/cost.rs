//! The roofline + occupancy kernel cost model.
//!
//! This module stands in for the physical GPU of the paper's testbed. Each
//! [`KernelDesc`] is priced as
//!
//! ```text
//! latency = t_launch + max( flops / (peak_flops · e_kind · occ(tiles)),
//!                           bytes / (peak_bw   · b_kind) )
//! ```
//!
//! where `occ(tiles) = tiles / (tiles + κ·SMs)` is a saturating occupancy
//! efficiency and `(e_kind, b_kind)` are per-kernel-family ceilings. This one
//! mechanism reproduces the paper's qualitative findings:
//!
//! * small batches are **memory/overhead-bound**, large batches
//!   **compute-bound** (Takeaway 5),
//! * throughput rises near-linearly then saturates logarithmically with
//!   batch size (Fig. 8, the basis of the Eq. 2 throughput model),
//! * SM utilization grows with batch size, is lower for sparse MoE at equal
//!   batch, and is batch-independent for de-quantization (Fig. 9),
//! * time-weighted DRAM utilization falls as batch grows (Fig. 10).

use crate::kernel::{KernelDesc, KernelKind};
use crate::spec::GpuSpec;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Which resource bound determined a kernel's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Arithmetic throughput bound.
    Compute,
    /// DRAM bandwidth bound.
    Memory,
    /// Fixed launch/dispatch overhead dominated.
    Overhead,
}

/// Per-kernel-family efficiency ceilings and framework overheads.
///
/// Every constant is calibrated against a *published* observation of the
/// paper, noted on the field. The defaults model PyTorch eager execution
/// with bitsandbytes-style NF4 de-quantization, as used by the paper's
/// LLaMA-Factory setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationProfile {
    /// GEMM fraction of peak tensor throughput at full occupancy
    /// (cuBLAS on medium shapes; bounds the compute-bound regime of Fig. 8).
    pub matmul_peak_frac: f64,
    /// FlashAttention-2 fraction of peak (paper §III enables FA-2).
    pub attention_peak_frac: f64,
    /// Mamba selective-scan fraction of peak (scan is not tensor-core work).
    pub mamba_peak_frac: f64,
    /// Non-tensor (CUDA-core) compute ceiling for elementwise-style kernels.
    pub scalar_peak_frac: f64,
    /// Achievable fraction of peak DRAM bandwidth for streaming kernels.
    pub stream_bw_frac: f64,
    /// Achievable DRAM fraction for NF4 de-quantization. bitsandbytes-style
    /// dequant runs far below streaming peak; this constant sets the large
    /// fixed cost per step that makes small-batch Mixtral-QLoRA
    /// overhead-bound and dequant "significant at small batch sizes"
    /// (paper Fig. 6).
    pub dequant_bw_frac: f64,
    /// Achievable DRAM fraction for optimizer read-modify-write sweeps.
    pub optimizer_bw_frac: f64,
    /// Occupancy shape parameter κ: tiles = κ·SMs gives 50% efficiency.
    pub occupancy_kappa: f64,
    /// Per-kernel dispatch overhead added on top of the hardware launch
    /// latency, in µs (PyTorch eager dispatch; drives the per-kernel fixed
    /// cost visible at batch size 1).
    pub dispatch_overhead_us: f64,
}

impl Default for CalibrationProfile {
    fn default() -> Self {
        CalibrationProfile {
            matmul_peak_frac: 0.45,
            attention_peak_frac: 0.30,
            mamba_peak_frac: 0.10,
            scalar_peak_frac: 0.04,
            stream_bw_frac: 0.70,
            dequant_bw_frac: 0.28,
            optimizer_bw_frac: 0.55,
            occupancy_kappa: 1.0,
            dispatch_overhead_us: 14.0,
        }
    }
}

impl CalibrationProfile {
    /// `(compute_frac, bandwidth_frac)` ceilings for a kernel family.
    pub fn ceilings(&self, kind: KernelKind) -> (f64, f64) {
        match kind {
            KernelKind::MatMul => (self.matmul_peak_frac, self.stream_bw_frac),
            KernelKind::Attention => (self.attention_peak_frac, self.stream_bw_frac),
            KernelKind::MambaScan => (self.mamba_peak_frac, 0.60),
            KernelKind::Dequant => (self.scalar_peak_frac, self.dequant_bw_frac),
            KernelKind::Router => (self.matmul_peak_frac, self.stream_bw_frac),
            KernelKind::Optimizer => (self.scalar_peak_frac, self.optimizer_bw_frac),
            KernelKind::Softmax
            | KernelKind::TopK
            | KernelKind::Norm
            | KernelKind::Elementwise
            | KernelKind::IndexAdd => (self.scalar_peak_frac, self.stream_bw_frac),
        }
    }
}

/// The priced execution of one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Wall-clock latency in seconds.
    pub latency_s: f64,
    /// SM utilization in `[0, 1]`: the occupancy-weighted fraction of SM
    /// capacity kept busy while the kernel runs (Nsight `sm__throughput`
    /// analogue, reported in the paper's Fig. 9).
    pub sm_util: f64,
    /// Achieved fraction of peak DRAM bandwidth in `[0, 1]`
    /// (Nsight `dram__throughput` analogue, Fig. 10).
    pub dram_util: f64,
    /// The binding resource.
    pub bound: Bound,
}

/// Prices [`KernelDesc`]s on a [`GpuSpec`] under a [`CalibrationProfile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    spec: GpuSpec,
    calib: CalibrationProfile,
}

impl CostModel {
    /// Cost model with the default calibration.
    pub fn new(spec: GpuSpec) -> Self {
        CostModel {
            spec,
            calib: CalibrationProfile::default(),
        }
    }

    /// Cost model with an explicit calibration profile.
    pub fn with_calibration(spec: GpuSpec, calib: CalibrationProfile) -> Self {
        CostModel { spec, calib }
    }

    /// The device being modeled.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The active calibration.
    pub fn calibration(&self) -> &CalibrationProfile {
        &self.calib
    }

    /// Occupancy efficiency for a kernel exposing `tiles` independent tiles.
    pub fn occupancy(&self, tiles: f64) -> f64 {
        let s = self.spec.sm_count as f64 * self.calib.occupancy_kappa;
        tiles / (tiles + s)
    }

    /// Prices a single kernel launch.
    pub fn kernel_cost(&self, k: &KernelDesc) -> KernelCost {
        let (compute_frac, bw_frac) = self.calib.ceilings(k.kind);
        let occ = self.occupancy(k.tiles);
        let peak_flops = self.spec.peak_tflops * 1e12;
        let peak_bw = self.spec.mem_bandwidth_gbps * 1e9;

        let t_compute = if k.flops > 0.0 {
            k.flops / (peak_flops * compute_frac * occ)
        } else {
            0.0
        };
        let t_memory = if k.bytes > 0.0 {
            k.bytes / (peak_bw * bw_frac)
        } else {
            0.0
        };
        let t_launch =
            (self.spec.kernel_launch_overhead_us + self.calib.dispatch_overhead_us) * 1e-6;
        let t_work = t_compute.max(t_memory);
        let latency = t_launch + t_work;

        let bound = if t_work < t_launch {
            Bound::Overhead
        } else if t_compute >= t_memory {
            Bound::Compute
        } else {
            Bound::Memory
        };

        // SMs are occupied (issuing or stalled on memory) for the working
        // portion of the kernel, across the fraction of the machine the grid
        // covers.
        let busy = (k.tiles / self.spec.sm_count as f64).min(1.0);
        let sm_util = (busy * t_work / latency).clamp(0.0, 1.0);
        let dram_util = (k.bytes / peak_bw / latency).clamp(0.0, 1.0);

        let cost = KernelCost {
            latency_s: latency,
            sm_util,
            dram_util,
            bound,
        };
        obs_record(k.kind, &cost);
        cost
    }

    /// Total latency of a sequence of kernels (no overlap, as in eager
    /// execution).
    pub fn sequence_latency(&self, kernels: &[KernelDesc]) -> f64 {
        kernels.iter().map(|k| self.kernel_cost(k).latency_s).sum()
    }
}

/// Obs counter handles for per-kernel roofline attribution, created once and
/// shared by every [`CostModel`] (attribution is a property of the pricing
/// event, not of a particular model instance).
struct ObsHandles {
    priced: ftsim_obs::Counter,
    /// Nanoseconds of priced latency attributed to each binding resource,
    /// indexed compute / memory / overhead.
    bound_ns: [ftsim_obs::Counter; 3],
    /// Per-kernel-family priced nanoseconds, indexed by [`KernelKind::all`]
    /// order.
    kind_ns: [ftsim_obs::Counter; 11],
    /// Per-family `sm_util`-weighted nanoseconds: dividing by `kind_ns`
    /// recovers the time-weighted SM utilization the paper's Fig. 9 plots.
    kind_sm_ns: [ftsim_obs::Counter; 11],
    /// Per-family `dram_util`-weighted nanoseconds (Fig. 10 analogue).
    kind_dram_ns: [ftsim_obs::Counter; 11],
}

/// Mirrors one priced kernel into the obs registry. One relaxed atomic load
/// when observability is off.
#[inline]
fn obs_record(kind: KernelKind, cost: &KernelCost) {
    if !ftsim_obs::enabled() {
        return;
    }
    static HANDLES: OnceLock<ObsHandles> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| {
        let registry = ftsim_obs::registry();
        let per_kind = |prefix: &str| {
            KernelKind::all().map(|k| registry.counter(&format!("gpu.cost.{prefix}.{}", k.label())))
        };
        ObsHandles {
            priced: registry.counter("gpu.cost.kernels_priced"),
            bound_ns: [
                registry.counter("gpu.cost.bound_ns.compute"),
                registry.counter("gpu.cost.bound_ns.memory"),
                registry.counter("gpu.cost.bound_ns.overhead"),
            ],
            kind_ns: per_kind("kind_ns"),
            kind_sm_ns: per_kind("kind_sm_ns"),
            kind_dram_ns: per_kind("kind_dram_ns"),
        }
    });
    let ns = (cost.latency_s * 1e9) as u64;
    handles.priced.add(1);
    let bound_idx = match cost.bound {
        Bound::Compute => 0,
        Bound::Memory => 1,
        Bound::Overhead => 2,
    };
    handles.bound_ns[bound_idx].add(ns);
    let kind_idx = KernelKind::all()
        .iter()
        .position(|k| *k == kind)
        .expect("every kind is listed in all()");
    handles.kind_ns[kind_idx].add(ns);
    handles.kind_sm_ns[kind_idx].add((cost.latency_s * cost.sm_util * 1e9) as u64);
    handles.kind_dram_ns[kind_idx].add((cost.latency_s * cost.dram_util * 1e9) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> CostModel {
        CostModel::new(GpuSpec::a40())
    }

    #[test]
    fn occupancy_saturates_toward_one() {
        let m = model();
        assert!(m.occupancy(1.0) < 0.05);
        let half = m.occupancy(84.0);
        assert!((half - 0.5).abs() < 1e-9, "kappa=1 → 50% at tiles=SMs");
        assert!(m.occupancy(100_000.0) > 0.99);
    }

    #[test]
    fn obs_attribution_records_priced_kernels() {
        let m = model();
        let registry = ftsim_obs::registry();
        let priced = registry.counter("gpu.cost.kernels_priced");
        let matmul_ns = registry.counter("gpu.cost.kind_ns.matmul");
        let compute_ns = registry.counter("gpu.cost.bound_ns.compute");
        let (p0, m0, c0) = (priced.get(), matmul_ns.get(), compute_ns.get());
        ftsim_obs::enable();
        let c = m.kernel_cost(&KernelDesc::matmul(8192, 8192, 8192, 2));
        ftsim_obs::disable();
        // Other tests in this binary may also price kernels while the flag
        // is up, so assert lower bounds only.
        assert!(priced.get() > p0);
        let ns = (c.latency_s * 1e9) as u64;
        assert!(matmul_ns.get() >= m0 + ns);
        assert!(compute_ns.get() >= c0 + ns, "a big GEMM is compute-bound");
    }

    #[test]
    fn big_gemm_is_compute_bound() {
        let m = model();
        let k = KernelDesc::matmul(8192, 8192, 8192, 2);
        let c = m.kernel_cost(&k);
        assert_eq!(c.bound, Bound::Compute);
        assert!(c.sm_util > 0.9);
    }

    #[test]
    fn skinny_gemm_is_memory_bound() {
        // One token row: loads the whole weight matrix for almost no math.
        let m = model();
        let k = KernelDesc::matmul(1, 14336, 4096, 2);
        let c = m.kernel_cost(&k);
        assert_eq!(c.bound, Bound::Memory);
    }

    #[test]
    fn tiny_kernel_is_overhead_bound() {
        let m = model();
        let k = KernelDesc::elementwise(KernelKind::Norm, 128.0, 5.0, 4.0);
        let c = m.kernel_cost(&k);
        assert_eq!(c.bound, Bound::Overhead);
    }

    #[test]
    fn dequant_util_is_batch_independent() {
        // The dequant kernel touches the same weights regardless of batch:
        // identical descriptors → identical utilization (paper Fig. 9/10).
        let m = model();
        let c = m.kernel_cost(&KernelDesc::dequant(1e9));
        assert!(c.sm_util > 0.5, "weights expose plenty of parallelism");
        assert!(c.dram_util > 0.15 && c.dram_util < 0.30);
    }

    #[test]
    fn matmul_sm_util_grows_with_rows() {
        let m = model();
        let small = m.kernel_cost(&KernelDesc::matmul(32, 14336, 4096, 2));
        let large = m.kernel_cost(&KernelDesc::matmul(1024, 14336, 4096, 2));
        assert!(large.sm_util > small.sm_util);
    }

    #[test]
    fn matmul_dram_util_falls_with_rows() {
        let m = model();
        let small = m.kernel_cost(&KernelDesc::matmul(32, 14336, 4096, 2));
        let large = m.kernel_cost(&KernelDesc::matmul(2048, 14336, 4096, 2));
        assert!(large.dram_util < small.dram_util);
    }

    #[test]
    fn faster_gpu_is_faster_on_compute_bound_work() {
        let a40 = CostModel::new(GpuSpec::a40());
        let h100 = CostModel::new(GpuSpec::h100_80());
        let k = KernelDesc::matmul(4096, 4096, 4096, 2);
        assert!(h100.kernel_cost(&k).latency_s < a40.kernel_cost(&k).latency_s);
    }

    #[test]
    fn sequence_latency_adds_up() {
        let m = model();
        let ks = vec![
            KernelDesc::matmul(256, 256, 256, 2),
            KernelDesc::dequant(1e6),
        ];
        let total = m.sequence_latency(&ks);
        let manual: f64 = ks.iter().map(|k| m.kernel_cost(k).latency_s).sum();
        assert!((total - manual).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_latency_monotone_in_flops(base in 1e6f64..1e12, extra in 1e6f64..1e12) {
            let m = model();
            let k1 = KernelDesc::new(KernelKind::MatMul, base, 1e6, 500.0);
            let k2 = KernelDesc::new(KernelKind::MatMul, base + extra, 1e6, 500.0);
            prop_assert!(m.kernel_cost(&k2).latency_s >= m.kernel_cost(&k1).latency_s);
        }

        #[test]
        fn prop_latency_monotone_in_bytes(base in 1e6f64..1e12, extra in 1e6f64..1e12) {
            let m = model();
            let k1 = KernelDesc::new(KernelKind::Elementwise, 0.0, base, 500.0);
            let k2 = KernelDesc::new(KernelKind::Elementwise, 0.0, base + extra, 500.0);
            prop_assert!(m.kernel_cost(&k2).latency_s >= m.kernel_cost(&k1).latency_s);
        }

        #[test]
        fn prop_utils_in_unit_interval(flops in 0.0f64..1e13, bytes in 0.0f64..1e12, tiles in 1.0f64..1e6) {
            let m = model();
            let c = m.kernel_cost(&KernelDesc::new(KernelKind::MatMul, flops, bytes, tiles));
            prop_assert!((0.0..=1.0).contains(&c.sm_util));
            prop_assert!((0.0..=1.0).contains(&c.dram_util));
            prop_assert!(c.latency_s > 0.0);
        }

        #[test]
        fn prop_occupancy_monotone(t1 in 1.0f64..1e6, t2 in 1.0f64..1e6) {
            let m = model();
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(m.occupancy(lo) <= m.occupancy(hi));
        }
    }
}
