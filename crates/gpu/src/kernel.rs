//! Kernel descriptors: the unit of work the cost model prices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kernel families that appear in the paper's MoE-layer breakdown
/// (Fig. 6) and hardware characterization (Figs. 9–10), plus the remaining
/// families needed to cover a full fine-tuning step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KernelKind {
    /// Dense matrix multiplication (GEMM) — expert W1/W2/W3, attention
    /// projections, LoRA adapters.
    MatMul,
    /// NF4 → bf16 weight de-quantization (QLoRA path only).
    Dequant,
    /// MoE router: gate projection producing router logits.
    Router,
    /// Row-wise softmax (router weights, attention probabilities).
    Softmax,
    /// Top-k expert selection.
    TopK,
    /// Fused flash-attention kernel.
    Attention,
    /// Mamba selective-scan kernel (BlackMamba state-space layers).
    MambaScan,
    /// RMS / layer normalization.
    Norm,
    /// Generic elementwise work: activations, residual adds, scaling.
    Elementwise,
    /// `index_add_` scatter combining expert outputs (paper Fig. 12 line 8).
    IndexAdd,
    /// Optimizer update (AdamW read-modify-write over trainable state).
    Optimizer,
}

impl KernelKind {
    /// All kinds, in display order.
    pub fn all() -> [KernelKind; 11] {
        use KernelKind::*;
        [
            MatMul,
            Dequant,
            Router,
            Softmax,
            TopK,
            Attention,
            MambaScan,
            Norm,
            Elementwise,
            IndexAdd,
            Optimizer,
        ]
    }

    /// Short label used in reports (matches the paper's figure legends where
    /// applicable).
    pub fn label(&self) -> &'static str {
        match self {
            KernelKind::MatMul => "matmul",
            KernelKind::Dequant => "dequant",
            KernelKind::Router => "router",
            KernelKind::Softmax => "softmax",
            KernelKind::TopK => "topk",
            KernelKind::Attention => "attention",
            KernelKind::MambaScan => "mamba_scan",
            KernelKind::Norm => "norm",
            KernelKind::Elementwise => "elementwise",
            KernelKind::IndexAdd => "index_add",
            KernelKind::Optimizer => "optimizer",
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single kernel launch: how much arithmetic, how much memory traffic, and
/// how much tile-level parallelism it exposes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel family (drives per-kind efficiency in the cost model).
    pub kind: KernelKind,
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes moved to/from DRAM (reads + writes).
    pub bytes: f64,
    /// Independent tiles / thread blocks the kernel can spread over SMs.
    pub tiles: f64,
}

impl KernelDesc {
    /// Creates a descriptor; clamps negative inputs to zero.
    pub fn new(kind: KernelKind, flops: f64, bytes: f64, tiles: f64) -> Self {
        KernelDesc {
            kind,
            flops: flops.max(0.0),
            bytes: bytes.max(0.0),
            tiles: tiles.max(1.0),
        }
    }

    /// A GEMM `C[m,n] = A[m,k] @ B[k,n]` with `dtype_bytes`-wide elements.
    ///
    /// `flops = 2 m n k`, traffic = A + B + C, tiles follow a 64×128 output
    /// tiling (a common tensor-core tile granularity).
    pub fn matmul(m: usize, n: usize, k: usize, dtype_bytes: usize) -> Self {
        let (mf, nf, kf, d) = (m as f64, n as f64, k as f64, dtype_bytes as f64);
        KernelDesc::new(
            KernelKind::MatMul,
            2.0 * mf * nf * kf,
            (mf * kf + kf * nf + mf * nf) * d,
            (mf / 64.0).ceil() * (nf / 128.0).ceil(),
        )
    }

    /// An elementwise kernel over `elems` elements with `flops_per_elem`
    /// operations and `bytes_per_elem` of traffic each.
    pub fn elementwise(
        kind: KernelKind,
        elems: f64,
        flops_per_elem: f64,
        bytes_per_elem: f64,
    ) -> Self {
        KernelDesc::new(
            kind,
            elems * flops_per_elem,
            elems * bytes_per_elem,
            (elems / 4096.0).ceil(),
        )
    }

    /// A de-quantization kernel expanding `elems` 4-bit weights to bf16:
    /// reads 0.5 B/elem (+ scales), writes 2 B/elem, ~4 flops each.
    pub fn dequant(elems: f64) -> Self {
        KernelDesc::new(
            KernelKind::Dequant,
            4.0 * elems,
            2.5625 * elems, // 0.5 read + 2.0 write + 1/16 block-scale read
            (elems / 4096.0).ceil(),
        )
    }

    /// Arithmetic intensity in FLOPs per byte (∞-safe: returns 0 for empty
    /// kernels).
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            0.0
        } else {
            self.flops / self.bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops_and_bytes() {
        let k = KernelDesc::matmul(128, 256, 64, 2);
        assert_eq!(k.flops, 2.0 * 128.0 * 256.0 * 64.0);
        assert_eq!(k.bytes, ((128 * 64 + 64 * 256 + 128 * 256) * 2) as f64);
        assert_eq!(k.tiles, 4.0); // ceil(128/64) * ceil(256/128)
    }

    #[test]
    fn matmul_tiles_round_up() {
        let k = KernelDesc::matmul(1, 14336, 4096, 2);
        assert_eq!(k.tiles, 112.0); // 1 row-tile × 112 col-tiles
    }

    #[test]
    fn dequant_traffic_dominated_by_write() {
        let k = KernelDesc::dequant(1e6);
        assert!(k.bytes > 2.0e6 && k.bytes < 3.0e6);
        assert_eq!(k.kind, KernelKind::Dequant);
    }

    #[test]
    fn intensity_monotone_in_k() {
        // Bigger inner dimension -> higher arithmetic intensity.
        let small = KernelDesc::matmul(256, 256, 64, 2);
        let large = KernelDesc::matmul(256, 256, 1024, 2);
        assert!(large.intensity() > small.intensity());
    }

    #[test]
    fn new_clamps_degenerate_inputs() {
        let k = KernelDesc::new(KernelKind::Norm, -5.0, -1.0, 0.0);
        assert_eq!(k.flops, 0.0);
        assert_eq!(k.bytes, 0.0);
        assert_eq!(k.tiles, 1.0);
        assert_eq!(k.intensity(), 0.0);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            KernelKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), KernelKind::all().len());
    }
}
