//! Cloud GPU rental pricing.
//!
//! The paper prices GPU hours on CUDO Compute ("as other popular cloud
//! providers do not offer cost/hour rates for the NVIDIA A40") and notes the
//! rates can be swapped for AWS or Lambda. The CUDO rates below are the ones
//! printed in the paper's Table IV; the other providers carry representative
//! 2024 on-demand rates and exist so users can re-run the cost study against
//! a different price book.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A cloud GPU provider with a known price book.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CloudProvider {
    /// CUDO Compute — the provider the paper budgets against (Table IV).
    Cudo,
    /// Amazon Web Services (on-demand, single-GPU share of the instance).
    Aws,
    /// Lambda Labs on-demand.
    Lambda,
}

impl CloudProvider {
    /// Short lower-case identifier used in scenario specs and cache keys.
    pub fn key(&self) -> &'static str {
        match self {
            CloudProvider::Cudo => "cudo",
            CloudProvider::Aws => "aws",
            CloudProvider::Lambda => "lambda",
        }
    }
}

impl std::str::FromStr for CloudProvider {
    type Err = String;

    /// Parses the short identifier (`"cudo"`, `"aws"`, `"lambda"`),
    /// case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cudo" => Ok(CloudProvider::Cudo),
            "aws" => Ok(CloudProvider::Aws),
            "lambda" => Ok(CloudProvider::Lambda),
            other => Err(format!(
                "unknown provider {other:?} (want cudo, aws, or lambda)"
            )),
        }
    }
}

impl fmt::Display for CloudProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CloudProvider::Cudo => "CUDO Compute",
            CloudProvider::Aws => "AWS",
            CloudProvider::Lambda => "Lambda",
        })
    }
}

/// Hourly GPU prices in USD, keyed by GPU name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTable {
    provider: CloudProvider,
    usd_per_hour: BTreeMap<String, f64>,
}

impl PriceTable {
    /// The price book for `provider`.
    ///
    /// CUDO rates are the paper's Table IV values (A40 $0.79, A100-80GB
    /// $1.67, H100 $2.10); A100-40GB is interpolated from CUDO's 2024
    /// listings. AWS/Lambda rates are representative on-demand prices.
    pub fn for_provider(provider: CloudProvider) -> Self {
        let entries: &[(&str, f64)] = match provider {
            CloudProvider::Cudo => &[
                ("A40", 0.79),
                ("A100-40GB", 1.35),
                ("A100-80GB", 1.67),
                ("H100-80GB", 2.10),
            ],
            CloudProvider::Aws => &[
                ("A100-40GB", 4.10),
                ("A100-80GB", 5.12),
                ("H100-80GB", 12.29),
            ],
            CloudProvider::Lambda => &[
                ("A100-40GB", 1.29),
                ("A100-80GB", 1.79),
                ("H100-80GB", 2.49),
            ],
        };
        PriceTable {
            provider,
            usd_per_hour: entries
                .iter()
                .map(|&(name, price)| (name.to_string(), price))
                .collect(),
        }
    }

    /// An empty custom price book for user-supplied rates.
    pub fn custom() -> Self {
        PriceTable {
            provider: CloudProvider::Cudo,
            usd_per_hour: BTreeMap::new(),
        }
    }

    /// The provider this table belongs to.
    pub fn provider(&self) -> CloudProvider {
        self.provider
    }

    /// Hourly price for `gpu_name`, if listed.
    pub fn usd_per_hour(&self, gpu_name: &str) -> Option<f64> {
        self.usd_per_hour.get(gpu_name).copied()
    }

    /// Adds or overrides a rate, returning the table for chaining.
    pub fn with_rate(mut self, gpu_name: impl Into<String>, usd_per_hour: f64) -> Self {
        self.usd_per_hour.insert(gpu_name.into(), usd_per_hour);
        self
    }

    /// GPU names with known prices.
    pub fn listed_gpus(&self) -> impl Iterator<Item = &str> {
        self.usd_per_hour.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cudo_prices_match_paper_table_iv() {
        let t = PriceTable::for_provider(CloudProvider::Cudo);
        assert_eq!(t.usd_per_hour("A40"), Some(0.79));
        assert_eq!(t.usd_per_hour("A100-80GB"), Some(1.67));
        assert_eq!(t.usd_per_hour("H100-80GB"), Some(2.10));
    }

    #[test]
    fn aws_has_no_a40() {
        // The paper's stated reason for using CUDO.
        let t = PriceTable::for_provider(CloudProvider::Aws);
        assert_eq!(t.usd_per_hour("A40"), None);
    }

    #[test]
    fn with_rate_overrides() {
        let t = PriceTable::for_provider(CloudProvider::Cudo).with_rate("A40", 0.50);
        assert_eq!(t.usd_per_hour("A40"), Some(0.50));
    }

    #[test]
    fn custom_starts_empty() {
        let t = PriceTable::custom();
        assert_eq!(t.listed_gpus().count(), 0);
        let t = t.with_rate("MyGPU", 1.0);
        assert_eq!(t.usd_per_hour("MyGPU"), Some(1.0));
    }

    #[test]
    fn provider_round_trips_through_its_key() {
        for provider in [
            CloudProvider::Cudo,
            CloudProvider::Aws,
            CloudProvider::Lambda,
        ] {
            assert_eq!(provider.key().parse::<CloudProvider>(), Ok(provider));
        }
        assert_eq!(" AWS ".parse::<CloudProvider>(), Ok(CloudProvider::Aws));
        assert!("azure".parse::<CloudProvider>().is_err());
    }

    #[test]
    fn catalog_gpus_are_priced_on_cudo() {
        let t = PriceTable::for_provider(CloudProvider::Cudo);
        for gpu in crate::GpuSpec::catalog() {
            assert!(
                t.usd_per_hour(&gpu.name).is_some(),
                "missing price for {}",
                gpu.name
            );
        }
    }
}
