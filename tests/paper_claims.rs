//! The paper's six takeaways, asserted against this reproduction.

use ftsim::gpu::{CostModel, GpuSpec};
use ftsim::model::{presets, FineTuneConfig, MemoryModel, Sparsity};
use ftsim::sim::moetrain::{train, MoeTrainConfig};
use ftsim::sim::{StepSimulator, ThroughputSweep, TrainabilityMatrix};
use ftsim::workload::SyntheticTask;

fn a40_sim(model: ftsim::model::ModelConfig, ft: FineTuneConfig) -> StepSimulator {
    StepSimulator::new(model, ft, CostModel::new(GpuSpec::a40()))
}

/// Takeaway 1: a sparse model can be trained as well as its dense
/// counterpart — verified by genuinely training both.
#[test]
fn takeaway1_sparse_trains_as_well_as_dense() {
    let task = SyntheticTask::commonsense(16, 4, 42);
    let sparse = train(&task, &MoeTrainConfig::mixtral_like(2), "sparse");
    let dense = train(&task, &MoeTrainConfig::mixtral_like(8), "dense");
    assert!(
        sparse.peak_accuracy() > 0.8,
        "sparse {:.3}",
        sparse.peak_accuracy()
    );
    assert!(
        (sparse.peak_accuracy() - dense.peak_accuracy()).abs() < 0.10,
        "sparse {:.3} vs dense {:.3}",
        sparse.peak_accuracy(),
        dense.peak_accuracy()
    );
}

/// Takeaway 2: fine-tuning reaches peak accuracy within ten epochs.
#[test]
fn takeaway2_ten_epochs_suffice() {
    for curve in &TrainabilityMatrix::fig3().curves {
        assert!(curve.convergence_epoch(0.02) <= 10, "{}", curve.label);
    }
    // And in the genuinely trained model:
    let task = SyntheticTask::commonsense(16, 4, 7);
    let out = train(&task, &MoeTrainConfig::mixtral_like(2), "t2");
    let best = out.peak_accuracy();
    assert!(out.curve.iter().any(|m| m.eval_accuracy >= best - 0.02));
}

/// Takeaway 3: MoE matmuls dominate end-to-end execution time.
#[test]
fn takeaway3_moe_is_the_costliest_layer() {
    let mut shares = Vec::new();
    for (model, ft, batch) in [
        (presets::mixtral_8x7b(), FineTuneConfig::qlora_sparse(), 8),
        (presets::mixtral_8x7b(), FineTuneConfig::qlora_dense(), 2),
        (
            presets::blackmamba_2p8b(),
            FineTuneConfig::full_sparse(),
            12,
        ),
        (presets::blackmamba_2p8b(), FineTuneConfig::full_dense(), 3),
    ] {
        let trace = a40_sim(model, ft).simulate_step(batch, 128);
        let b = trace.section_breakdown();
        assert_eq!(b.sorted()[0].0, "moe");
        shares.push(b.percent("moe"));
        // Within the MoE layer, matmul is the top kernel at max batch.
        assert_eq!(trace.moe_kernel_breakdown().sorted()[0].0, "matmul");
    }
    let avg = shares.iter().sum::<f64>() / shares.len() as f64;
    assert!(
        (75.0..97.0).contains(&avg),
        "avg MoE share {avg:.1}% (paper ~85%)"
    );
}

/// Takeaway 4: the sparse model's throughput advantage comes through the
/// larger batch it affords.
#[test]
fn takeaway4_sparse_improves_throughput() {
    let model = presets::mixtral_8x7b();
    let gpu = GpuSpec::a40();
    let seq = 79;
    let sparse_ft = FineTuneConfig::qlora_sparse();
    let dense_ft = FineTuneConfig::qlora_dense();
    let sparse_max = MemoryModel::new(&model, &sparse_ft).max_batch_size(&gpu, seq);
    let dense_max = MemoryModel::new(&model, &dense_ft).max_batch_size(&gpu, seq);
    assert!(sparse_max > dense_max);

    let sparse = ThroughputSweep::run(
        &a40_sim(model.clone(), sparse_ft),
        "sparse",
        seq,
        &(1..=sparse_max).collect::<Vec<_>>(),
    )
    .expect("valid batch list");
    let dense = ThroughputSweep::run(
        &a40_sim(model, dense_ft),
        "dense",
        seq,
        &(1..=dense_max).collect::<Vec<_>>(),
    )
    .expect("valid batch list");
    // Faster at the same batch AND at peak.
    assert!(sparse.qps_at(dense_max).unwrap() > dense.qps_at(dense_max).unwrap());
    assert!(sparse.peak_qps() > 1.5 * dense.peak_qps());
}

/// Takeaway 5: growing the batch moves the workload from memory-bound to
/// compute-bound.
#[test]
fn takeaway5_memory_to_compute_bound() {
    use ftsim::gpu::cost::Bound;
    use ftsim::sim::{Section, Stage};
    let model = presets::mixtral_8x7b();
    let sim = a40_sim(model, FineTuneConfig::qlora_sparse());
    let share_compute_bound = |batch: usize| -> f64 {
        let trace = sim.simulate_step(batch, 128);
        let matmuls: Vec<_> = trace
            .records()
            .filter(|r| {
                r.section == Section::Moe
                    && r.stage == Stage::Forward
                    && r.desc.kind == ftsim::gpu::KernelKind::MatMul
            })
            .collect();
        let total: f64 = matmuls.iter().map(|r| r.cost.latency_s).sum();
        let compute: f64 = matmuls
            .iter()
            .filter(|r| r.cost.bound == Bound::Compute)
            .map(|r| r.cost.latency_s)
            .sum();
        compute / total
    };
    assert!(share_compute_bound(16) > share_compute_bound(1));
    // Utilization signature: SM up, DRAM down.
    let t1 = sim.simulate_step(1, 128).moe_overall_utilization();
    let t16 = sim.simulate_step(16, 128).moe_overall_utilization();
    assert!(t16.sm_util > t1.sm_util);
    assert!(t16.dram_util < t1.dram_util);
}

/// Takeaway 6: fine-tuning's effect on expert load imbalance is model- and
/// dataset-dependent; the paper's published variances are reproduced.
#[test]
fn takeaway6_load_imbalance_is_config_dependent() {
    let cases = ftsim::sim::routing::paper_cases();
    // Mixtral grows more imbalanced on both datasets.
    assert!(cases[0].variance_delta() > 40.0);
    assert!(cases[1].variance_delta() > 40.0);
    // BlackMamba CS becomes more balanced; GS is nearly unchanged.
    assert!(cases[2].variance_delta() < -40.0);
    assert!(cases[3].variance_delta().abs() < 10.0);
    // And the trained-router drift is nonzero in the real model.
    let task = SyntheticTask::commonsense(16, 4, 42);
    let out = train(&task, &MoeTrainConfig::mixtral_like(2), "t6");
    assert!(out.imbalance_delta().abs() > 1.0);
}

/// Fig. 4 structure: optimizer dominates BlackMamba small-batch steps but is
/// negligible for Mixtral QLoRA; backward exceeds forward everywhere.
#[test]
fn stage_breakdown_matches_fig4() {
    use ftsim::sim::Stage;
    let bm =
        a40_sim(presets::blackmamba_2p8b(), FineTuneConfig::full_sparse()).simulate_step(1, 128);
    let share = bm.stage_seconds(Stage::Optimizer) / bm.total_seconds();
    assert!(
        (0.25..0.70).contains(&share),
        "BlackMamba optimizer share {share:.2}"
    );

    let mx = a40_sim(presets::mixtral_8x7b(), FineTuneConfig::qlora_sparse()).simulate_step(1, 128);
    assert!(mx.stage_seconds(Stage::Optimizer) / mx.total_seconds() < 0.05);

    for t in [&bm, &mx] {
        assert!(t.stage_seconds(Stage::Backward) > t.stage_seconds(Stage::Forward));
    }
}

/// Table III is reproduced cell-for-cell (one BlackMamba cell within +1,
/// as documented in EXPERIMENTS.md).
#[test]
fn table_iii_reproduction() {
    let gpu = GpuSpec::a40();
    let grid = [
        (presets::mixtral_8x7b(), true, 79, 8),
        (presets::mixtral_8x7b(), false, 79, 2),
        (presets::mixtral_8x7b(), true, 174, 3),
        (presets::mixtral_8x7b(), false, 174, 1),
        (presets::blackmamba_2p8b(), true, 79, 20),
        (presets::blackmamba_2p8b(), false, 79, 6),
        (presets::blackmamba_2p8b(), false, 174, 2),
    ];
    for (model, sparse, seq, expect) in grid {
        let s = if sparse {
            Sparsity::TopK(2)
        } else {
            Sparsity::Dense
        };
        let ft = FineTuneConfig::for_model(&model, s);
        let got = MemoryModel::new(&model, &ft).max_batch_size(&gpu, seq);
        assert_eq!(got, expect, "{} sparse={sparse} seq={seq}", model.name);
    }
    // The one near-miss: BlackMamba-S on MATH (paper 8, ours 9).
    let ft = FineTuneConfig::full_sparse();
    let got = MemoryModel::new(&presets::blackmamba_2p8b(), &ft).max_batch_size(&gpu, 174);
    assert!((8..=9).contains(&got));
}
