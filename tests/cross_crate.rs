//! Cross-crate consistency and determinism checks on the facade.

use ftsim::gpu::{CostModel, GpuSpec};
use ftsim::model::{presets, FineTuneConfig};
use ftsim::sim::StepSimulator;
use ftsim::tensor::{Quantized4Bit, Tensor, Var};
use ftsim::workload::{presets as data, BatchPlanner, SeqLenDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulated traces are deterministic: same inputs, identical output.
#[test]
fn step_traces_are_deterministic() {
    let build = || {
        StepSimulator::new(
            presets::mixtral_8x7b(),
            FineTuneConfig::qlora_sparse(),
            CostModel::new(GpuSpec::a40()),
        )
        .simulate_step(4, 128)
    };
    let a = build();
    let b = build();
    assert_eq!(a, b);
}

/// FLOP accounting is consistent between the model crate's parameter counts
/// and the sim crate's kernel traces (forward ≈ 2 · active params · tokens).
#[test]
fn params_and_flops_agree_across_crates() {
    use ftsim::sim::Stage;
    for (model, ft, topk) in [
        (
            presets::mixtral_8x7b(),
            FineTuneConfig::qlora_sparse(),
            2usize,
        ),
        (presets::blackmamba_2p8b(), FineTuneConfig::full_dense(), 8),
    ] {
        let active = model.param_counts().active_total(topk) as f64;
        let tokens = 256.0;
        let trace = StepSimulator::new(model.clone(), ft, CostModel::new(GpuSpec::a40()))
            .simulate_step(2, 128);
        let fwd: f64 = trace
            .records()
            .filter(|r| r.stage == Stage::Forward)
            .map(|r| r.desc.flops)
            .sum();
        let ratio = fwd / (2.0 * active * tokens);
        assert!(
            (0.7..1.8).contains(&ratio),
            "{}: ratio {ratio:.2}",
            model.name
        );
    }
}

/// The workload batching path feeds the memory model sensibly: expected
/// padded length grows with batch size, shrinking usable batch in turn.
#[test]
fn batching_and_memory_model_compose() {
    let ds = data::commonsense_15k();
    let dist = SeqLenDistribution::for_dataset(&ds);
    let mut rng = StdRng::seed_from_u64(3);
    let small = BatchPlanner::new(2, dist).expected_padded_len(300, &mut rng);
    let large = BatchPlanner::new(16, dist).expected_padded_len(300, &mut rng);
    assert!(large > small);

    let mem =
        ftsim::model::MemoryModel::new(&presets::mixtral_8x7b(), &FineTuneConfig::qlora_sparse());
    let bs_small = mem.max_batch_size(&GpuSpec::a40(), small.round() as usize);
    let bs_large = mem.max_batch_size(&GpuSpec::a40(), large.round() as usize);
    assert!(bs_small >= bs_large);
}

/// The tensor crate's quantizer agrees with the model crate's byte
/// accounting for NF4 storage.
#[test]
fn quantizer_matches_memory_accounting() {
    let per_elem = Quantized4Bit::bytes_per_element(64);
    let dtype = ftsim::model::Dtype::Nf4.bytes_per_param();
    assert!((per_elem - dtype).abs() < 1e-9);

    let weights: Vec<f32> = (0..4096)
        .map(|i| ((i as f32) * 0.01).sin() * 0.02)
        .collect();
    let q = Quantized4Bit::quantize(&weights, 64).expect("valid block");
    let actual = q.storage_bytes() as f64 / weights.len() as f64;
    assert!((actual - per_elem).abs() < 1e-9);
}

/// Autograd gradients drive real optimization through the facade path.
#[test]
fn facade_autograd_smoke() {
    let w = Var::parameter(Tensor::scalar(4.0));
    let opt = ftsim::tensor::nn::Sgd::new(0.1);
    for _ in 0..50 {
        let loss = w.mul(&w).expect("same shape").mean();
        loss.backward();
        opt.step(std::slice::from_ref(&w));
    }
    assert!(w.value().item().abs() < 0.1);
}

/// Doc-level invariant: every catalog GPU can run at least the sparse
/// BlackMamba recipe at CS lengths.
#[test]
fn every_catalog_gpu_fits_blackmamba() {
    let mem =
        ftsim::model::MemoryModel::new(&presets::blackmamba_2p8b(), &FineTuneConfig::full_sparse());
    for gpu in GpuSpec::catalog() {
        assert!(
            mem.max_batch_size(&gpu, 79) >= 1,
            "{} cannot fit BlackMamba sparse",
            gpu.name
        );
    }
}
