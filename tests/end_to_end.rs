//! End-to-end pipeline: simulator → sweeps → analytical fits → cloud cost,
//! mirroring the paper's full §IV + §V flow across crates.

use ftsim::cost::{validate_combo, CostTable, FineTuneJob, ThroughputModel};
use ftsim::gpu::{CloudProvider, CostModel, GpuSpec, PriceTable};
use ftsim::model::{presets, FineTuneConfig, MemoryModel};
use ftsim::workload::presets as data;

/// The full Table IV protocol, from scratch.
#[test]
fn simulate_fit_and_price_mixtral_gs() {
    let model = presets::mixtral_8x7b();
    let ft = FineTuneConfig::qlora_sparse();
    let mem = MemoryModel::new(&model, &ft);
    let seq = data::gsm8k().median_seq_len;

    let gpus = [GpuSpec::a40(), GpuSpec::a100_80(), GpuSpec::h100_80()];
    let fitted: Vec<(GpuSpec, ThroughputModel)> = gpus
        .iter()
        .map(|gpu| {
            let v = validate_combo(
                format!("Mixtral/GS @ {}", gpu.name),
                &model,
                &CostModel::new(gpu.clone()),
                seq,
                2,
            );
            // Every fit must be usable (paper's validation gate).
            assert!(
                v.rmse < 0.6 || v.relative_rmse() < 0.25,
                "{}: rmse {:.3} rel {:.3}",
                gpu.name,
                v.rmse,
                v.relative_rmse()
            );
            (gpu.clone(), v.model)
        })
        .collect();

    let table = CostTable::build(
        &fitted,
        &mem,
        0.25,
        seq,
        FineTuneJob::ten_epochs(&data::math_14k()),
        &PriceTable::for_provider(CloudProvider::Cudo),
    );

    // Paper Table IV structure: 3 rows, H100 cheapest despite the highest
    // hourly rate; A40 MBS = 4.
    assert_eq!(table.rows.len(), 3);
    assert_eq!(table.cheapest().unwrap().gpu, "H100-80GB");
    let a40 = table.rows.iter().find(|r| r.gpu == "A40").unwrap();
    assert_eq!(a40.max_batch, 4);
    assert!(a40.usd > table.cheapest().unwrap().usd);

    // Costs are tens of dollars at 14K-query scale...
    for row in &table.rows {
        assert!((1.0..200.0).contains(&row.usd), "{}: ${}", row.gpu, row.usd);
    }
    // ...and thousands at OpenOrca scale (paper: $3460).
    let orca = table.scaled_to_queries(
        FineTuneJob::ten_epochs(&data::math_14k()),
        FineTuneJob::ten_epochs(&data::openorca()),
    );
    let best = orca.cheapest().unwrap();
    assert!(
        (300.0..30_000.0).contains(&best.usd),
        "OpenOrca: ${:.0}",
        best.usd
    );
}

/// The Fig. 14 protocol for every (model, dataset) combo the paper keeps.
#[test]
fn throughput_model_validates_on_a40() {
    let a40 = CostModel::new(GpuSpec::a40());
    let combos = [
        ("Mixtral/CS", presets::mixtral_8x7b(), 79usize),
        ("Mixtral/MATH", presets::mixtral_8x7b(), 174),
        ("BlackMamba/CS", presets::blackmamba_2p8b(), 79),
    ];
    for (label, model, seq) in combos {
        let v = validate_combo(label, &model, &a40, seq, 2);
        assert!(
            v.rmse < 0.55 || v.relative_rmse() < 0.20,
            "{label}: rmse {:.3} rel {:.3}",
            v.rmse,
            v.relative_rmse()
        );
        // The fitted curve must preserve the sparse-beats-dense ordering.
        assert!(
            v.model.predict(2.0, 0.25) > v.model.predict(2.0, 1.0),
            "{label}"
        );
    }
}

/// Eq. 1 fitted across the GPU catalog predicts capacity on a held-out GPU.
#[test]
fn batch_model_generalizes_across_gpus() {
    use ftsim::cost::{BatchSample, MaxBatchModel};
    let model = presets::mixtral_8x7b();
    let ft = FineTuneConfig::qlora_sparse();
    let mem = MemoryModel::new(&model, &ft);

    // Train on A40 + A100-40 + A100-80, hold out H100-80.
    let sample = |gpu: &GpuSpec, seq: usize, sparsity: f64, sparse: bool| {
        let ft = if sparse {
            FineTuneConfig::qlora_sparse()
        } else {
            FineTuneConfig::qlora_dense()
        };
        let m = MemoryModel::new(&model, &ft);
        BatchSample {
            gpu_mem_gb: gpu.mem_gb,
            model_mem_gb: m.weights_gb(),
            seq_len: seq,
            sparsity,
            max_batch: m.max_batch_size(gpu, seq),
        }
    };
    let mut train = Vec::new();
    for gpu in [GpuSpec::a40(), GpuSpec::a100_40(), GpuSpec::a100_80()] {
        for seq in [79usize, 148, 174] {
            for (s, is_sparse) in [(0.25, true), (1.0, false)] {
                let smp = sample(&gpu, seq, s, is_sparse);
                if smp.max_batch > 0 {
                    train.push(smp);
                }
            }
        }
    }
    let (fitted, _) = MaxBatchModel::fit(&train);

    let h100 = GpuSpec::h100_80();
    for seq in [79usize, 148, 174] {
        let truth = mem.max_batch_size(&h100, seq);
        let pred = fitted.predict(h100.mem_gb, mem.weights_gb(), seq, 0.25);
        let err = pred.abs_diff(truth);
        assert!(
            err <= 2,
            "H100 seq {seq}: predicted {pred} vs measured {truth}"
        );
    }
}
