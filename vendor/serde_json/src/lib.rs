//! Offline stand-in for `serde_json`.
//!
//! Provides the subset ftsim uses to emit experiment artifacts: a [`Value`]
//! tree, the [`json!`] macro, and `to_string` / `to_string_pretty`
//! rendering. Conversion into `Value` goes through the [`ToJson`] trait
//! (implemented for primitives, strings, options, vectors, and `Value`
//! itself) instead of serde's `Serialize`, because the vendored serde is a
//! marker-trait stub. Object key order is preserved as written, which keeps
//! artifact output deterministic.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integers are kept exact (rendered without a decimal point).
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => out.push_str(&format_float(*f)),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, pretty, indent + 1);
                    item.write(out, pretty, indent + 1);
                }
                newline_indent(out, pretty, indent);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, pretty, indent + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, pretty, indent + 1);
                }
                newline_indent(out, pretty, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, pretty: bool, indent: usize) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

fn format_float(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string(); // JSON has no NaN/Inf, same as serde_json
    }
    let mut s = format!("{f}");
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        s.push_str(".0");
    }
    s
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, false, 0);
        f.write_str(&s)
    }
}

/// Conversion into a [`Value`]; stands in for `Serialize` in the `json!`
/// macro. Takes `&self` so `json!` never moves fields out of borrowed data.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )+};
}

impl_tojson_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

/// Builds a [`Value`] from JSON-ish syntax. Keys must be string literals;
/// values are arbitrary expressions convertible via [`ToJson`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::ToJson::to_json(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Rendering/parsing error (the offline stub never fails to render).
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders compact JSON.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    value.write(&mut s, false, 0);
    Ok(s)
}

/// Renders pretty-printed JSON (two-space indent, like serde_json).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    value.write(&mut s, true, 0);
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_documents() {
        let rows: Vec<Value> = (0..2).map(|i| json!([i, i * 10])).collect();
        let doc = json!({
            "name": "fig8",
            "batch": 16usize,
            "qps": 123.5,
            "ok": true,
            "missing": Option::<usize>::None,
            "rows": rows,
            "nested": json!({ "a": 1 }),
        });
        assert_eq!(doc.get("name"), Some(&Value::String("fig8".into())));
        assert_eq!(doc.get("batch"), Some(&Value::Int(16)));
        assert_eq!(doc.get("missing"), Some(&Value::Null));
        assert!(doc.get("nested").unwrap().get("a").is_some());
        assert!(!doc.is_null());
        assert!(json!(null).is_null());
    }

    #[test]
    fn pretty_rendering_is_stable_and_valid() {
        let doc = json!({ "a": 1, "b": json!([1.5, "x\n"]), "c": json!({}) });
        let pretty = to_string_pretty(&doc).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    \"x\\n\"\n  ],\n  \"c\": {}\n}"
        );
        let compact = to_string(&doc).unwrap();
        assert_eq!(compact, "{\"a\":1,\"b\":[1.5,\"x\\n\"],\"c\":{}}");
    }

    #[test]
    fn floats_render_with_decimal_point() {
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(0.125), "0.125");
        assert_eq!(format_float(f64::NAN), "null");
    }
}
