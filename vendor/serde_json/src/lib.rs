//! Offline stand-in for `serde_json`.
//!
//! Provides the subset ftsim uses to emit experiment artifacts: a [`Value`]
//! tree, the [`json!`] macro, and `to_string` / `to_string_pretty`
//! rendering. Conversion into `Value` goes through the [`ToJson`] trait
//! (implemented for primitives, strings, options, vectors, and `Value`
//! itself) instead of serde's `Serialize`, because the vendored serde is a
//! marker-trait stub. Object key order is preserved as written, which keeps
//! artifact output deterministic.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integers are kept exact (rendered without a decimal point).
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => out.push_str(&format_float(*f)),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, pretty, indent + 1);
                    item.write(out, pretty, indent + 1);
                }
                newline_indent(out, pretty, indent);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, pretty, indent + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, pretty, indent + 1);
                }
                newline_indent(out, pretty, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, pretty: bool, indent: usize) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

fn format_float(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string(); // JSON has no NaN/Inf, same as serde_json
    }
    let mut s = format!("{f}");
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        s.push_str(".0");
    }
    s
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, false, 0);
        f.write_str(&s)
    }
}

/// Conversion into a [`Value`]; stands in for `Serialize` in the `json!`
/// macro. Takes `&self` so `json!` never moves fields out of borrowed data.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )+};
}

impl_tojson_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

/// Builds a [`Value`] from JSON-ish syntax. Keys must be string literals;
/// values are arbitrary expressions convertible via [`ToJson`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::ToJson::to_json(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Rendering/parsing error (the offline stub never fails to render).
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`]. Accepts exactly the grammar of
/// RFC 8259 (minus out-of-BMP `\u` surrogate pairs, which the workspace never
/// emits); trailing non-whitespace is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape '{hex}'")))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid codepoint {code}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str, so
                    // boundaries are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid utf-8".to_string()))?
                        .chars()
                        .next()
                        .expect("non-empty");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        } else {
            // Integers wider than i64 fall back to float, like serde_json's
            // arbitrary-precision-off behaviour.
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error(format!("invalid number '{text}'"))),
            }
        }
    }
}

/// Renders compact JSON.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    value.write(&mut s, false, 0);
    Ok(s)
}

/// Renders pretty-printed JSON (two-space indent, like serde_json).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    value.write(&mut s, true, 0);
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_documents() {
        let rows: Vec<Value> = (0..2).map(|i| json!([i, i * 10])).collect();
        let doc = json!({
            "name": "fig8",
            "batch": 16usize,
            "qps": 123.5,
            "ok": true,
            "missing": Option::<usize>::None,
            "rows": rows,
            "nested": json!({ "a": 1 }),
        });
        assert_eq!(doc.get("name"), Some(&Value::String("fig8".into())));
        assert_eq!(doc.get("batch"), Some(&Value::Int(16)));
        assert_eq!(doc.get("missing"), Some(&Value::Null));
        assert!(doc.get("nested").unwrap().get("a").is_some());
        assert!(!doc.is_null());
        assert!(json!(null).is_null());
    }

    #[test]
    fn pretty_rendering_is_stable_and_valid() {
        let doc = json!({ "a": 1, "b": json!([1.5, "x\n"]), "c": json!({}) });
        let pretty = to_string_pretty(&doc).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    \"x\\n\"\n  ],\n  \"c\": {}\n}"
        );
        let compact = to_string(&doc).unwrap();
        assert_eq!(compact, "{\"a\":1,\"b\":[1.5,\"x\\n\"],\"c\":{}}");
    }

    #[test]
    fn floats_render_with_decimal_point() {
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(0.125), "0.125");
        assert_eq!(format_float(f64::NAN), "null");
    }

    #[test]
    fn parser_round_trips_rendered_documents() {
        let doc = json!({
            "name": "trace \"x\"\n",
            "n": -42,
            "pi": 3.25,
            "exp": 1.5e3,
            "flags": json!([true, false, json!(null)]),
            "nested": json!({ "empty_arr": json!([]), "empty_obj": json!({}) }),
        });
        for rendered in [to_string(&doc).unwrap(), to_string_pretty(&doc).unwrap()] {
            assert_eq!(from_str(&rendered).unwrap(), doc);
        }
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = from_str(r#"["aéb\t", "π"]"#).unwrap();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::String("aéb\t".to_string()),
                Value::String("π".to_string()),
            ])
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"abc", "[1}"] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }
}
