//! Offline stand-in for `serde_derive`.
//!
//! The workspace's `serde` stub defines `Serialize` / `Deserialize` as
//! marker traits, so the derives only need to emit empty impls. The type
//! name is recovered from the token stream directly (no syn/quote — those
//! crates are unavailable offline): it is the first identifier after the
//! `struct`/`enum`/`union` keyword. None of the workspace's derived types
//! are generic, which keeps this parse trivial. The `serde` helper
//! attribute is registered so field annotations like `#[serde(default)]`
//! parse; the stub ignores their contents.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_kw = true;
            }
        }
    }
    panic!("serde_derive stub: could not find a type name in derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .unwrap()
}
