//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace benches use —
//! `Criterion::default().sample_size(..)`, `bench_function`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — with a simple
//! mean-of-samples timer instead of criterion's full statistical pipeline.
//! Sample counts are scaled down (capped at [`MAX_SAMPLES`]) so `cargo
//! bench` stays fast in CI while still printing comparable numbers.

use std::time::Instant;

/// Upper bound on timed samples per benchmark.
pub const MAX_SAMPLES: usize = 10;

/// Benchmark driver; collects nothing, prints per-bench mean latency.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: MAX_SAMPLES,
        }
    }
}

impl Criterion {
    /// Requested sample count (capped at [`MAX_SAMPLES`] in this stub).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n.min(MAX_SAMPLES);
        self
    }

    /// Times `f` and prints `name ... mean <time> (<n> samples)`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        // One untimed warm-up pass, then the timed samples.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mean = if bencher.samples.is_empty() {
            0.0
        } else {
            bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64
        };
        println!(
            "{name:<48} mean {} ({} samples)",
            format_seconds(mean),
            bencher.samples.len()
        );
        self
    }
}

/// Passed to the bench closure; [`Bencher::iter`] times one routine call.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Runs `routine` once under a timer and records the elapsed time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a bench group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(2 + 2));
            runs += 1;
        });
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
    }

    #[test]
    fn units_format_sanely() {
        assert!(format_seconds(2.5).ends_with(" s"));
        assert!(format_seconds(2.5e-3).ends_with(" ms"));
        assert!(format_seconds(2.5e-6).ends_with(" us"));
        assert!(format_seconds(2.5e-9).ends_with(" ns"));
    }
}
