//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so `Serialize` and
//! `Deserialize` are plain marker traits here and the derives (re-exported
//! from the vendored `serde_derive`) emit empty impls. Actual JSON
//! rendering for experiment artifacts lives in the vendored `serde_json`,
//! which converts primitives and `Value` trees directly rather than going
//! through a serializer.

pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type opts into serialization. No-op in the offline stub.
pub trait Serialize {}

/// Marker: the type opts into deserialization. No-op in the offline stub.
pub trait Deserialize: Sized {}
