//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro over `pattern in strategy` arguments, numeric range strategies
//! (`Range` / `RangeInclusive`), tuple strategies, `collection::vec`, and
//! `prop_assert!` / `prop_assert_eq!`. Each test runs [`CASES`] cases drawn
//! from a SplitMix64 stream seeded by the test's module path, so runs are
//! fully deterministic (no shrinking, no persistence files).

use std::ops::{Range, RangeInclusive};

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 64;

/// Per-test deterministic random source.
#[derive(Debug, Clone)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Seeds the stream from a test name (FNV-1a hash).
    pub fn new(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values for one `pattern in strategy` binding.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (runner.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (runner.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )+};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (runner.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + (runner.unit_f64() as $t) * (end - start)
            }
        }
    )+};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(runner),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

pub mod collection {
    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, runner: &mut TestRunner) -> Self::Value {
            let len = self.size.clone().sample(runner);
            (0..len).map(|_| self.element.sample(runner)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Defines `#[test]` functions that run their body over random strategy
/// draws. Assertion failures report the failing case index.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let mut runner =
                    $crate::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..$crate::CASES {
                    let result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = $crate::Strategy::sample(&($strat), &mut runner);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = result {
                        panic!("proptest case {case} failed: {msg}");
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), lhs, rhs
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    proptest! {
        fn ranges_stay_in_bounds(x in 1usize..10, y in -2.0f64..2.0, k in 1usize..=4) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&k));
        }

        fn tuples_and_vecs_sample(t in (1usize..5, 0.0f32..1.0), v in crate::collection::vec(1usize..500, 1..20)) {
            prop_assert!(t.0 >= 1 && t.0 < 5);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| (1..500).contains(&x)));
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = crate::TestRunner::new("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRunner::new("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
