//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal implementation of exactly the API surface ftsim uses: `StdRng`
//! (a SplitMix64 generator), `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! over integer and float ranges, and `seq::SliceRandom::shuffle`.
//!
//! The streams are deterministic per seed but deliberately *not* compatible
//! with upstream rand; everything in ftsim that consumes randomness is
//! seeded explicitly, so determinism per seed is the only property relied
//! upon.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (unit_f64(rng) as $t) * (end - start)
            }
        }
    )+};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Fast, full 64-bit
    /// state, and passes through every seed to a distinct stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix once so seed 0 does not start from raw state 0.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            StdRng {
                state: rng.state ^ seed.rotate_left(17),
            }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: f32 = r.gen_range(-1.0..=1.0f32);
            assert!((-1.0..=1.0f32).contains(&z));
            let w: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_samples_cover_the_range() {
        let mut r = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..512).map(|_| r.gen_range(0.0..1.0)).collect();
        assert!(samples.iter().any(|&x| x < 0.25));
        assert!(samples.iter().any(|&x| x > 0.75));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
