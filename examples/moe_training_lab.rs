//! MoE training lab: genuinely train small mixture-of-experts models and
//! watch the paper's trainability findings emerge.
//!
//! ```text
//! cargo run --release --example moe_training_lab
//! ```
//!
//! Reproduces, at CPU scale, the *relative* structure of the paper's
//! Fig. 3 (sparse learns ≈ dense; math-like tasks are harder; the smaller
//! model lags) and Fig. 11 (fine-tuning shifts the expert token
//! distribution).

use ftsim::sim::moetrain::{train, MoeTrainConfig};
use ftsim::workload::SyntheticTask;

fn spark(vals: impl IntoIterator<Item = f64>) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    vals.into_iter()
        .map(|v| BARS[((v.clamp(0.0, 1.0) * 7.0).round()) as usize])
        .collect()
}

fn main() {
    let cs = SyntheticTask::commonsense(16, 4, 42);
    let math = SyntheticTask::math(16, 4, 42);

    println!("10 epochs of real AdamW training; accuracy per epoch:\n");
    let runs = vec![
        (
            "dense  top-8 / commonsense",
            MoeTrainConfig::mixtral_like(8),
            &cs,
        ),
        (
            "sparse top-2 / commonsense",
            MoeTrainConfig::mixtral_like(2),
            &cs,
        ),
        (
            "dense  top-8 / math       ",
            MoeTrainConfig::mixtral_like(8),
            &math,
        ),
        (
            "sparse top-2 / math       ",
            MoeTrainConfig::mixtral_like(2),
            &math,
        ),
        (
            "small  top-2 / commonsense",
            MoeTrainConfig::blackmamba_like(2),
            &cs,
        ),
    ];
    for (label, cfg, task) in runs {
        let out = train(task, &cfg, label);
        let curve: Vec<f64> = std::iter::once(out.initial_accuracy)
            .chain(out.curve.iter().map(|m| m.eval_accuracy))
            .collect();
        println!(
            "{label}  {}  {:.0}% → {:.0}% (peak {:.0}%)",
            spark(curve.iter().copied()),
            out.initial_accuracy * 100.0,
            out.final_accuracy() * 100.0,
            out.peak_accuracy() * 100.0
        );
        println!(
            "   routing variance {:>6.1} → {:>6.1}  ({:+.1}, dominant expert {} → {})\n",
            out.routing_before.variance(),
            out.routing_after.variance(),
            out.imbalance_delta(),
            out.routing_before.dominant_expert(),
            out.routing_after.dominant_expert(),
        );
    }

    println!("takeaway 1 (sparse ≈ dense) and takeaway 6 (fine-tuning moves");
    println!("the expert load distribution) both emerge from real training.");
}
