//! Quickstart: the paper's pipeline in one page.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Simulates one fine-tuning step of Mixtral-8x7B (QLoRA, sparse top-2) on
//! an A40, sweeps throughput, fits the paper's Eq. 2 model, and prices the
//! job on the cloud.

use ftsim::cost::{validate_combo, CostTable, FineTuneJob};
use ftsim::gpu::{CloudProvider, CostModel, GpuSpec, PriceTable};
use ftsim::model::{presets, FineTuneConfig, MemoryModel};
use ftsim::sim::StepSimulator;
use ftsim::workload::presets as data;

fn main() {
    let model = presets::mixtral_8x7b();
    let ft = FineTuneConfig::qlora_sparse();
    let gpu = GpuSpec::a40();
    let dataset = data::commonsense_15k();

    println!("model: {} ({})", model.name, ft);
    println!("gpu:   {gpu}");
    println!("data:  {dataset}\n");

    // 1. How large a batch fits? (paper Table III)
    let mem = MemoryModel::new(&model, &ft);
    let max_bs = mem.max_batch_size(&gpu, dataset.median_seq_len);
    println!("max batch size: {max_bs}");

    // 2. What does a training step look like? (paper Figs. 4-6)
    let sim = StepSimulator::new(model.clone(), ft, CostModel::new(gpu.clone()));
    let trace = sim.simulate_step(max_bs, dataset.median_seq_len);
    println!(
        "step: {:.2} s over {} kernels; MoE layer share {:.0}%",
        trace.total_seconds(),
        trace.kernel_count(),
        trace.section_breakdown().percent("moe")
    );

    // 3. Fit the analytical throughput model (paper Eq. 2 / Fig. 14).
    let v = validate_combo(
        "Mixtral/CS @ A40",
        &model,
        &CostModel::new(gpu.clone()),
        dataset.median_seq_len,
        2,
    );
    println!(
        "Eq.2 fit: C2={:.2} C3={:.3} C4={:.2} (RMSE {:.3})",
        v.model.c2, v.model.c3, v.model.c4, v.rmse
    );

    // 4. Price a 10-epoch fine-tuning job (paper Table IV).
    let table = CostTable::build(
        &[(gpu, v.model)],
        &mem,
        0.25,
        dataset.median_seq_len,
        FineTuneJob::ten_epochs(&dataset),
        &PriceTable::for_provider(CloudProvider::Cudo),
    );
    println!("\ncost on CUDO:\n{table}");
}
