//! Profile explorer: an Nsight-style view of one simulated training step.
//!
//! ```text
//! cargo run --example profile_explorer -- [mixtral|blackmamba] [sparse|dense] [batch] [seq]
//! cargo run --example profile_explorer -- mixtral sparse 8 128
//! ```
//!
//! Prints the three breakdowns of the paper's Figs. 4–6 plus the
//! per-kernel-family SM / DRAM utilizations of Figs. 9–10.

use ftsim::gpu::{CostModel, GpuSpec};
use ftsim::model::{presets, FineTuneConfig, MemoryModel, Sparsity};
use ftsim::sim::report::{format_trace_summary, moe_utilization_table};
use ftsim::sim::StepSimulator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model = match args.first().map(String::as_str) {
        Some("blackmamba") => presets::blackmamba_2p8b(),
        _ => presets::mixtral_8x7b(),
    };
    let sparsity = match args.get(1).map(String::as_str) {
        Some("dense") => Sparsity::Dense,
        _ => Sparsity::TopK(2),
    };
    let ft = FineTuneConfig::for_model(&model, sparsity);
    let gpu = GpuSpec::a40();
    let seq: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(128);
    let batch: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        MemoryModel::new(&model, &ft)
            .max_batch_size(&gpu, seq)
            .max(1)
    });

    println!(
        "{} | {} | batch {} | seq {} | {}\n",
        model.name, ft, batch, seq, gpu
    );

    let quantized = ft.method.is_quantized();
    let sim = StepSimulator::new(model, ft, CostModel::new(gpu));
    let trace = sim.simulate_step(batch, seq);
    println!("{}", format_trace_summary(&trace));

    println!("MoE kernel utilizations (time-weighted):");
    println!("{:<14} {:>8} {:>8} {:>10}", "kernel", "SM", "DRAM", "time");
    for row in moe_utilization_table(&trace, quantized) {
        println!(
            "{:<14} {:>7.1}% {:>7.1}% {:>8.2}ms",
            row.kind.label(),
            row.util.sm_util * 100.0,
            row.util.dram_util * 100.0,
            row.util.seconds * 1e3
        );
    }
    let overall = trace.moe_overall_utilization();
    println!(
        "{:<14} {:>7.1}% {:>7.1}% {:>8.2}ms",
        "OVERALL",
        overall.sm_util * 100.0,
        overall.dram_util * 100.0,
        overall.seconds * 1e3
    );
}
