//! Capacity planner: where does the GPU memory go, and what batch size fits?
//!
//! ```text
//! cargo run --example capacity_planner -- [seq_len]
//! ```
//!
//! Walks the paper's §IV-B1/§V-A memory story: the per-component footprint
//! (weights, adapters, gradients, optimizer state), the Table III max-batch
//! grid, and the Fig. 13 projection to hypothetical 100/120 GB devices.

use ftsim::cost::{BatchSample, MemoryProjection};
use ftsim::gpu::GpuSpec;
use ftsim::model::{presets, FineTuneConfig, MemoryModel, Sparsity};

fn main() {
    let seq_len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(148);

    for model in presets::all() {
        println!("=== {} ===", model.name);
        let sparse = FineTuneConfig::for_model(&model, Sparsity::TopK(2));
        let mem = MemoryModel::new(&model, &sparse);
        let b = mem.breakdown(0, 0);
        println!(
            "static footprint: weights {:.2} GB + adapters {:.2} GB + grads {:.2} GB \
             + optimizer {:.2} GB + overhead {:.2} GB = {:.2} GB",
            b.weights_gb,
            b.adapters_gb,
            b.gradients_gb,
            b.optimizer_gb,
            b.overhead_gb,
            b.static_gb()
        );
        println!(
            "per query at {seq_len} tokens: {:.3} GB (sparse top-2)",
            mem.activation_gb_per_query(seq_len)
        );

        println!("\nmax batch size (sequence {seq_len}):");
        println!("{:<12} {:>7} {:>7}", "gpu", "sparse", "dense");
        for gpu in GpuSpec::catalog() {
            let dense_ft = FineTuneConfig::for_model(&model, Sparsity::Dense);
            let dense = MemoryModel::new(&model, &dense_ft).max_batch_size(&gpu, seq_len);
            let s = mem.max_batch_size(&gpu, seq_len);
            println!("{:<12} {:>7} {:>7}", gpu.name, s, dense);
        }

        // Fig. 13-style projection for this model.
        let mut measured: Vec<(String, BatchSample)> = Vec::new();
        for gpu in GpuSpec::catalog() {
            for (s, is_sparse) in [(0.25, true), (1.0, false)] {
                let ft = FineTuneConfig::for_model(
                    &model,
                    if is_sparse {
                        Sparsity::TopK(2)
                    } else {
                        Sparsity::Dense
                    },
                );
                let m = MemoryModel::new(&model, &ft);
                let mb = m.max_batch_size(&gpu, seq_len);
                if mb > 0 {
                    measured.push((
                        format!("{}{}", gpu.name, if is_sparse { "-S" } else { "-D" }),
                        BatchSample {
                            gpu_mem_gb: gpu.mem_gb,
                            model_mem_gb: m.weights_gb(),
                            seq_len,
                            sparsity: s,
                            max_batch: mb,
                        },
                    ));
                }
            }
        }
        if !measured.is_empty() {
            let proj = MemoryProjection::build(
                &measured,
                &[100.0, 120.0],
                mem.weights_gb(),
                seq_len,
                0.25,
            );
            println!(
                "\nEq.1 fit: C0={:.2} C1={:.3} (rmse {:.2}); projected sparse batch: \
                 100GB → {}, 120GB → {}",
                proj.model.c0,
                proj.model.c1,
                proj.fit_rmse,
                proj.points[proj.points.len() - 2].predicted,
                proj.points[proj.points.len() - 1].predicted,
            );
        }
        println!();
    }
}
