//! Cost planner: pick the cheapest cloud GPU for *your* fine-tuning job.
//!
//! ```text
//! cargo run --example cost_planner -- [queries] [median_seq_len] [epochs]
//! cargo run --example cost_planner -- 2000000 174 10   # OpenOrca-scale
//! ```
//!
//! This is the paper's §V workflow end-to-end: fit Eq. 2 per GPU from
//! simulated sweeps, predict the maximum batch size from the memory model,
//! and rank devices by total dollars.

use ftsim::cost::{validate_combo, CostTable, FineTuneJob, ThroughputModel};
use ftsim::gpu::{CloudProvider, CostModel, GpuSpec, PriceTable};
use ftsim::model::{presets, FineTuneConfig, MemoryModel};

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let queries = arg(1, 14_000);
    let seq_len = arg(2, 148);
    let epochs = arg(3, 10);
    let job = FineTuneJob { queries, epochs };

    let model = presets::mixtral_8x7b();
    let ft = FineTuneConfig::qlora_sparse();
    let mem = MemoryModel::new(&model, &ft);

    println!(
        "job: {} queries × {} epochs, median sequence {} tokens",
        queries, epochs, seq_len
    );
    println!("model: {} ({ft})\n", model.name);

    // Fit a throughput model per catalog GPU from simulator ground truth.
    let mut fitted: Vec<(GpuSpec, ThroughputModel)> = Vec::new();
    for gpu in GpuSpec::catalog() {
        if mem.max_batch_size(&gpu, seq_len) == 0 {
            println!("{}: model does not fit, skipping", gpu.name);
            continue;
        }
        let v = validate_combo(
            format!("Mixtral @ {}", gpu.name),
            &model,
            &CostModel::new(gpu.clone()),
            seq_len,
            2,
        );
        println!(
            "{:<12} Eq.2 fit RMSE {:.3} (relative {:.3})",
            gpu.name,
            v.rmse,
            v.relative_rmse()
        );
        fitted.push((gpu, v.model));
    }

    for provider in [
        CloudProvider::Cudo,
        CloudProvider::Lambda,
        CloudProvider::Aws,
    ] {
        let prices = PriceTable::for_provider(provider);
        let table = CostTable::build(&fitted, &mem, 0.25, seq_len, job, &prices);
        println!("\n=== {provider} ===");
        if table.rows.is_empty() {
            println!("no priced GPUs fit this job");
            continue;
        }
        print!("{table}");
        if let Some(best) = table.cheapest() {
            println!("--> rent {}: ${:.0} total", best.gpu, best.usd);
        }
    }
}
