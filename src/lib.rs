//! # ftsim
//!
//! A reproduction, as a Rust workspace, of *"Understanding the Performance
//! and Estimating the Cost of LLM Fine-Tuning"* (IISWC 2024): workload
//! characterization of single-GPU MoE LLM fine-tuning and an analytical
//! model for its cloud cost.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`tensor`] — CPU tensors, autograd, NN layers, NF4 quantization
//! * [`gpu`] — GPU specs, roofline cost model, profiling, pricing
//! * [`model`] — Mixtral/BlackMamba architectures, memory model
//! * [`workload`] — datasets, sequence-length distributions, synthetic tasks
//! * [`sim`] — the fine-tuning execution simulator + real MoE training
//! * [`cost`] — Eq. 1 / Eq. 2 analytical models, fitting, cost estimation
//! * [`serve`] — planner-as-a-service: TCP query engine + scenario cache
//!
//! ## Thirty-second tour
//!
//! ```
//! use ftsim::gpu::{CostModel, GpuSpec};
//! use ftsim::model::{presets, FineTuneConfig, MemoryModel};
//! use ftsim::sim::StepSimulator;
//!
//! // The paper's headline setup: Mixtral-8x7B, QLoRA, sparse top-2, A40.
//! let model = presets::mixtral_8x7b();
//! let ft = FineTuneConfig::qlora_sparse();
//!
//! // Maximum batch size on the A40 for the CS dataset (Table III: 8).
//! let mem = MemoryModel::new(&model, &ft);
//! assert_eq!(mem.max_batch_size(&GpuSpec::a40(), 79), 8);
//!
//! // One training step's kernel trace and its dominant layer (Fig. 5).
//! let sim = StepSimulator::new(model, ft, CostModel::new(GpuSpec::a40()));
//! let trace = sim.simulate_step(8, 79);
//! assert_eq!(trace.section_breakdown().sorted()[0].0, "moe");
//! ```

pub use ftsim_cost as cost;
pub use ftsim_gpu as gpu;
pub use ftsim_model as model;
pub use ftsim_serve as serve;
pub use ftsim_sim as sim;
pub use ftsim_tensor as tensor;
pub use ftsim_workload as workload;
